package sim

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// obsOn returns cfg with default observability enabled.
func obsOn(cfg Config) Config {
	cfg.Obs = &obs.Config{}
	return cfg
}

// TestObsZeroAlloc is the observability allocation gate: the epoch hot
// loop must stay inside the same steady-state budget as the untraced
// loop with the tracer, alloc probes, and flight recorder all on.
func TestObsZeroAlloc(t *testing.T) {
	const budget = 2.0
	for name, cfg := range allocModes(300) {
		t.Run(name, func(t *testing.T) {
			if got := epochAllocs(t, obsOn(cfg), 24*3, 24*9); got > budget {
				t.Errorf("traced steady-state allocations per epoch = %.2f, budget %.1f", got, budget)
			}
		})
	}
}

// TestObsByteIdentical locks in that tracing is pure telemetry: every
// mode produces byte-identical results with observability on and off.
func TestObsByteIdentical(t *testing.T) {
	w := allocWorld(t)
	for name, cfg := range allocModes(300) {
		t.Run(name, func(t *testing.T) {
			cfg.Hours = 24 * 6
			plain, err := NewEngine(cfg, w)
			if err != nil {
				t.Fatal(err)
			}
			want, err := finalState(plain)
			if err != nil {
				t.Fatal(err)
			}
			traced, err := NewEngine(obsOn(cfg), w)
			if err != nil {
				t.Fatal(err)
			}
			got, err := finalState(traced)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("traced run diverged from untraced run")
			}
		})
	}
}

// TestObsTracerReport checks the tracer sees every scheduled phase with
// plausible accumulators over a faults-mode run (the mode that schedules
// all eight phases).
func TestObsTracerReport(t *testing.T) {
	cfg := obsOn(allocModes(50)["faults"])
	cfg.Hours = 24 * 3
	e, err := NewEngine(cfg, allocWorld(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := finalState(e); err != nil {
		t.Fatal(err)
	}
	rep := e.Tracer().Report()
	if got, want := len(rep), len(PhaseNames()); got != want {
		t.Fatalf("tracer has %d phases, want %d", got, want)
	}
	for _, ps := range rep {
		if ps.Calls != int64(cfg.Hours) {
			t.Errorf("phase %s ran %d times, want %d", ps.Name, ps.Calls, cfg.Hours)
		}
		if ps.TotalNs < 0 || ps.MaxNs < 0 || ps.TotalNs < ps.MaxNs {
			t.Errorf("phase %s has inconsistent timings: total=%d max=%d", ps.Name, ps.TotalNs, ps.MaxNs)
		}
		if ps.AllocProbes == 0 {
			t.Errorf("phase %s was never alloc-probed", ps.Name)
		}
	}
}

// TestObsRecorderCheckpointRoundTrip proves the flight recorder survives
// a checkpoint: snapshot a traced faults run mid-flight, push the
// snapshot through JSON (the checkpoint envelope), restore, and compare
// the recorded windows — then confirm the restored ring keeps rolling.
func TestObsRecorderCheckpointRoundTrip(t *testing.T) {
	w := allocWorld(t)
	cfg := obsOn(allocModes(50)["faults"])
	cfg.Hours = 24 * 4
	cfg.Obs.FlightRecorderEvents = 64

	e, err := NewEngine(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	for e.Epoch() < cfg.Hours/2 {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := e.Snapshot()
	if snap.Recorder == nil {
		t.Fatal("snapshot carries no recorder state")
	}
	if snap.Recorder.Total == 0 || len(snap.Recorder.Events) == 0 {
		t.Fatal("recorder state is empty at mid-run")
	}
	kinds := map[string]bool{}
	for _, ev := range snap.Recorder.Events {
		kinds[ev.Kind] = true
	}
	if !kinds["accrual"] {
		t.Errorf("recorded window %v misses the accrual phase", kinds)
	}

	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	restored, err := NewEngineFrom(cfg, w, &decoded)
	if err != nil {
		t.Fatal(err)
	}
	rec := restored.FlightRecorder()
	if rec == nil {
		t.Fatal("restored engine has no recorder")
	}
	if !reflect.DeepEqual(rec.Events(), e.FlightRecorder().Events()) {
		t.Fatal("restored recorder window differs from donor's")
	}
	if rec.Total() != e.FlightRecorder().Total() {
		t.Fatalf("restored recorder total = %d, donor %d", rec.Total(), e.FlightRecorder().Total())
	}

	// The restored ring keeps recording — and the trajectory is still the
	// donor's.
	for !restored.Done() {
		if err := restored.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if rec.Total() <= snap.Recorder.Total {
		t.Fatal("restored recorder did not advance after restore")
	}
	wantState, err := finalState(e)
	if err != nil {
		t.Fatal(err)
	}
	gotState := restored.Finish().State()
	gotState.SolveTimeNs = 0
	if !reflect.DeepEqual(gotState, wantState) {
		t.Fatal("restored traced run diverged from donor")
	}
}

// TestObsRestoreWithoutObs checks the obs/no-obs checkpoint corners: a
// traced snapshot restores into an untraced config (recorder state is
// simply dropped), and an untraced snapshot restores into a traced
// config (the recorder starts empty).
func TestObsRestoreWithoutObs(t *testing.T) {
	w := allocWorld(t)
	cfg := allocModes(50)["faults"]
	cfg.Hours = 24 * 2

	traced, err := NewEngine(obsOn(cfg), w)
	if err != nil {
		t.Fatal(err)
	}
	for traced.Epoch() < cfg.Hours/2 {
		if err := traced.Step(); err != nil {
			t.Fatal(err)
		}
	}
	plain, err := NewEngineFrom(cfg, w, traced.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if plain.FlightRecorder() != nil {
		t.Fatal("untraced restore grew a recorder")
	}

	bare, err := NewEngine(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	for bare.Epoch() < cfg.Hours/2 {
		if err := bare.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := bare.Snapshot()
	if snap.Recorder != nil {
		t.Fatal("untraced snapshot carries recorder state")
	}
	rt, err := NewEngineFrom(obsOn(cfg), w, snap)
	if err != nil {
		t.Fatal(err)
	}
	if rt.FlightRecorder() == nil || rt.FlightRecorder().Total() != 0 {
		t.Fatal("traced restore from untraced snapshot should start an empty recorder")
	}
}

// TestObsRejectsFixedLoop: the fixed reference loop dispatches phases
// directly, so observability cannot trace it.
func TestObsRejectsFixedLoop(t *testing.T) {
	cfg := obsOn(allocModes(50)["classic"])
	cfg.FixedLoop = true
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted Obs with FixedLoop")
	}
}

// BenchmarkEpochAllocsObs is BenchmarkEpochAllocs with full
// observability on — the per-epoch tracing overhead behind
// BENCH_07.json.
func BenchmarkEpochAllocsObs(b *testing.B) {
	for name, cfg := range allocModes(300) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := obsOn(cfg)
			cfg.Hours = 24*3 + b.N
			e, err := NewEngine(cfg, allocWorld(b))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 24*3; i++ {
				if err := e.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
