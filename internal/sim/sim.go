package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/carbon"
	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/energy"
	"repro/internal/latency"
	"repro/internal/metrics"
	"repro/internal/placement"
)

// World bundles the static datasets a simulation runs against, so sweeps
// (Figures 12-16) can share one expensive setup.
type World struct {
	Zones  *carbon.Registry
	Traces *carbon.TraceSet
	Cities *latency.CityRegistry
	Dep    *deploy.Deployment
}

// NewWorld builds the default world: the 148-zone registry with generated
// year traces, the embedded city registry, and the integrated CDN
// deployment.
func NewWorld(seed int64) (*World, error) {
	zones, err := carbon.DefaultRegistry(seed)
	if err != nil {
		return nil, err
	}
	cities, err := latency.DefaultCityRegistry()
	if err != nil {
		return nil, err
	}
	dep, err := deploy.Generate(deploy.DefaultOptions(), zones, cities)
	if err != nil {
		return nil, err
	}
	return &World{
		Zones:  zones,
		Traces: carbon.NewGenerator(seed).GenerateTraces(zones),
		Cities: cities,
		Dep:    dep,
	}, nil
}

// Result aggregates one run's outcomes.
type Result struct {
	// CarbonG is total operational emissions in grams CO2eq.
	CarbonG float64
	// EnergyKWh is total energy consumed (dynamic + base of activated
	// servers).
	EnergyKWh float64
	// Latency summarizes placed apps' round-trip latency (ms).
	Latency metrics.Summary
	// MonthlyCarbonG is emissions per calendar month index (0-11).
	MonthlyCarbonG [12]float64
	// MonthlyLatency summarizes latency by month.
	MonthlyLatency [12]metrics.Summary
	// PlacementsByCity counts app placements per hosting city.
	PlacementsByCity *metrics.Counter
	// MonthlyPlacements counts placements per city per month
	// (Figure 13d), keyed "city/month".
	MonthlyPlacements *metrics.Counter
	// LoadCI samples the hosting zone's carbon intensity once per
	// app-hour (Figure 11c), when enabled.
	LoadCI []float64
	// Placed and Unplaced count apps over the whole run.
	Placed, Unplaced int
	// Migrations counts app relocations during periodic redeployment.
	Migrations int
	// MigrationKWh and MigrationCarbonG are the data-movement costs paid
	// by those relocations (included in EnergyKWh / CarbonG).
	MigrationKWh, MigrationCarbonG float64
	// SolveTime accumulates placement solver time.
	SolveTime time.Duration
	// Batches counts placement invocations.
	Batches int
}

// MeanRTTMs is the run's mean placed round-trip latency.
func (r *Result) MeanRTTMs() float64 { return r.Latency.Mean() }

// liveApp is a committed application.
type liveApp struct {
	site    int // index into sites
	model   string
	device  string
	powerW  float64
	rttMs   float64
	expires int // epoch index at which it departs
	srcSite int
}

// siteServer is the aggregate per-device server at one site.
type siteServer struct {
	site   int
	device energy.Device
	cap    cluster.Resources
	used   cluster.Resources
	on     bool
	// everOn marks servers whose base power has begun accruing.
}

// Run executes the simulation.
func Run(cfg Config, w *World) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sites := w.Dep.InRegion(cfg.Region)
	if len(sites) == 0 {
		return nil, fmt.Errorf("sim: no sites in region %v", cfg.Region)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Latency model per region.
	var model latency.Model
	switch cfg.Region {
	case carbon.RegionUS:
		model = latency.USModel()
	case carbon.RegionEurope:
		model = latency.EuropeModel()
	default:
		model = latency.DefaultModel()
	}
	// Pairwise RTT between site cities.
	rtt := make([][]float64, len(sites))
	for i := range sites {
		rtt[i] = make([]float64, len(sites))
		for j := range sites {
			if i != j {
				rtt[i][j] = model.RTTMs(sites[i].Location, sites[j].Location)
			}
		}
	}
	siteIdxByCity := map[string]int{}
	for i, s := range sites {
		siteIdxByCity[s.City] = i
	}

	// Demand and capacity weights.
	demandW := weights(sites, cfg.Demand)
	capW := weights(sites, cfg.Capacity)
	var capTotal float64
	for _, v := range capW {
		capTotal += v
	}

	// Build per-site aggregate servers.
	var servers []*siteServer
	for i := range sites {
		scale := capW[i] / capTotal * float64(len(sites))
		for _, devName := range cfg.Devices {
			dev, err := energy.DeviceByName(devName)
			if err != nil {
				return nil, err
			}
			capMilli := cfg.CapacityMilliPerSite * scale
			servers = append(servers, &siteServer{
				site:   i,
				device: dev,
				cap: cluster.NewResources(capMilli,
					float64(dev.MemMB)*scale*4, float64(dev.MemMB)*scale, 1e9),
				on: cfg.ServersAlwaysOn,
			})
		}
	}

	// Carbon service for forecasts.
	fc := cfg.Forecaster
	if fc == nil {
		fc = carbon.SeasonalNaive{Period: 24}
	}
	svc := carbon.NewService(w.Traces, fc)
	horizon := cfg.ForecastHorizonHours
	if horizon <= 0 {
		horizon = 24
	}

	solver := placement.NewHeuristicSolver()
	res := &Result{
		PlacementsByCity:  metrics.NewCounter(),
		MonthlyPlacements: metrics.NewCounter(),
	}

	// serverViews builds the placement view of every site server at the
	// given instant (forecast intensity, free capacity, power state).
	serverViews := func(now time.Time) ([]placement.Server, error) {
		pservers := make([]placement.Server, len(servers))
		for j, srv := range servers {
			mean, err := svc.MeanForecast(sites[srv.site].ZoneID, now, horizon)
			if err != nil {
				return nil, err
			}
			pservers[j] = placement.Server{
				ID:         fmt.Sprintf("srv-%d", j),
				DC:         sites[srv.site].City,
				Device:     srv.device.Name,
				Intensity:  mean,
				BasePowerW: srv.device.IdleW,
				PoweredOn:  srv.on,
				Free:       srv.cap.Sub(srv.used),
			}
		}
		return pservers, nil
	}
	rttOracle := func(source, dc string) float64 {
		return rtt[siteIdxByCity[source]][siteIdxByCity[dc]]
	}

	var live []*liveApp
	var backlog []placement.App
	var backlogSrc []int
	appSeq := 0
	start := w.Traces.Start.Add(time.Duration(cfg.StartHour) * time.Hour)

	for epoch := 0; epoch < cfg.Hours; epoch++ {
		now := start.Add(time.Duration(epoch) * time.Hour)
		if _, err := w.Traces.Trace(sites[0].ZoneID).IndexOf(now); err != nil {
			return nil, fmt.Errorf("sim: epoch %d outside trace span: %w", epoch, err)
		}
		month := int(now.Month()) - 1

		// 1. Departures.
		keep := live[:0]
		for _, a := range live {
			if a.expires > epoch {
				keep = append(keep, a)
				continue
			}
			srv := a.serverIn(servers, cfg)
			srv.used = srv.used.Sub(a.demand(cfg))
			if srv.used.Dominant(srv.cap) <= 0 && !cfg.ServersAlwaysOn {
				srv.on = false
			}
		}
		live = keep

		// 1b. Periodic redeployment (the paper's §7 future-work
		// extension): re-place every live app against current forecasts,
		// paying a data-movement cost per migration.
		if cfg.RedeployEveryHours > 0 && epoch > 0 && epoch%cfg.RedeployEveryHours == 0 && len(live) > 0 {
			if err := redeploy(cfg, res, sites, servers, live, svc, solver, serverViews, rttOracle, now); err != nil {
				return nil, err
			}
		}

		// 2. Arrivals (Poisson over the region, source site by demand
		// weight). Arrivals buffer into the backlog and are placed every
		// BatchHours (Algorithm 1 batching).
		n := poisson(rng, cfg.ArrivalsPerHour)
		for k := 0; k < n; k++ {
			src := sampleWeighted(rng, demandW)
			model := cfg.Model
			if len(cfg.Models) > 0 {
				model = cfg.Models[rng.Intn(len(cfg.Models))]
			}
			backlog = append(backlog, placement.App{
				ID:         fmt.Sprintf("app-%d", appSeq),
				Model:      model,
				Source:     sites[src].City,
				SLOms:      cfg.RTTLimitMs,
				RatePerSec: cfg.RatePerSec,
			})
			backlogSrc = append(backlogSrc, src)
			appSeq++
		}
		batchHours := cfg.BatchHours
		if batchHours <= 0 {
			batchHours = 1
		}
		var apps []placement.App
		var srcIdx []int
		if (epoch+1)%batchHours == 0 || epoch == cfg.Hours-1 {
			apps, srcIdx = backlog, backlogSrc
			backlog, backlogSrc = nil, nil
		}

		// 3. Placement (Algorithm 1 on this batch).
		if len(apps) > 0 {
			pservers, err := serverViews(now)
			if err != nil {
				return nil, err
			}
			prob, err := placement.Build(apps, pservers, rttOracle, nil)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			asg, err := solver.Solve(prob, cfg.Policy)
			if err != nil {
				return nil, err
			}
			res.SolveTime += time.Since(t0)
			res.Batches++

			for i, j := range asg.ServerOf {
				if j < 0 {
					res.Unplaced++
					continue
				}
				res.Placed++
				srv := servers[j]
				srv.used = srv.used.Add(prob.Demand[i][j])
				srv.on = true
				a := &liveApp{
					site:    srv.site,
					model:   apps[i].Model,
					device:  srv.device.Name,
					powerW:  prob.PowerW[i][j],
					rttMs:   prob.LatencyMs[i][j],
					expires: epoch + cfg.AppLifetimeHours,
					srcSite: srcIdx[i],
				}
				live = append(live, a)
				res.Latency.Add(a.rttMs)
				res.MonthlyLatency[month].Add(a.rttMs)
				city := sites[srv.site].City
				res.PlacementsByCity.Inc(city, 1)
				res.MonthlyPlacements.Inc(fmt.Sprintf("%s/%d", city, month), 1)
			}
		}

		// 4. Accrue emissions and energy at the actual hourly intensity.
		for _, a := range live {
			ci, err := svc.Current(sites[a.site].ZoneID, now)
			if err != nil {
				return nil, err
			}
			kwh := a.powerW / 1000
			res.CarbonG += kwh * ci
			res.EnergyKWh += kwh
			res.MonthlyCarbonG[month] += kwh * ci
			if cfg.CollectLoadCI {
				res.LoadCI = append(res.LoadCI, ci)
			}
		}
		if !cfg.ServersAlwaysOn {
			for _, srv := range servers {
				if srv.on {
					ci, err := svc.Current(sites[srv.site].ZoneID, now)
					if err != nil {
						return nil, err
					}
					kwh := srv.device.IdleW / 1000
					res.CarbonG += kwh * ci
					res.EnergyKWh += kwh
					res.MonthlyCarbonG[month] += kwh * ci
				}
			}
		}
	}
	return res, nil
}

// serverIn resolves a live app's aggregate server.
func (a *liveApp) serverIn(servers []*siteServer, cfg Config) *siteServer {
	for _, srv := range servers {
		if srv.site == a.site && srv.device.Name == a.device {
			return srv
		}
	}
	// Unreachable: apps are only committed to existing servers.
	panic("sim: live app references unknown server")
}

// demand reconstructs the app's resource demand on its device.
func (a *liveApp) demand(cfg Config) cluster.Resources {
	prof, err := energy.ProfileFor(a.model, a.device)
	if err != nil {
		panic(fmt.Sprintf("sim: profile vanished: %v", err))
	}
	occupancy := cfg.RatePerSec * prof.InferenceMs
	return cluster.NewResources(occupancy, 64, prof.MemMB, cfg.RatePerSec*2)
}

// weights computes per-site weights for a scenario.
func weights(sites []*deploy.Site, s Scenario) []float64 {
	out := make([]float64, len(sites))
	for i, site := range sites {
		switch s {
		case Uniform:
			out[i] = 1
		case ByPopulation:
			out[i] = math.Max(site.PopulationM, 0.01)
		default:
			out[i] = site.Weight
		}
	}
	return out
}

// sampleWeighted draws an index proportional to weights.
func sampleWeighted(rng *rand.Rand, w []float64) int {
	var total float64
	for _, v := range w {
		total += v
	}
	r := rng.Float64() * total
	for i, v := range w {
		r -= v
		if r <= 0 {
			return i
		}
	}
	return len(w) - 1
}

// poisson draws from a Poisson distribution (Knuth's method; fine for the
// small rates used here).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}

// Savings compares a policy run against a baseline run (typically
// Latency-aware) the way the paper reports results: percentage carbon
// saving and absolute latency increase.
type Savings struct {
	CarbonSavingPct   float64
	LatencyIncreaseMs float64
	// EnergyRatio is policy energy / baseline energy (Figure 15b).
	EnergyRatio float64
}

// CompareToBaseline computes the paper's headline metrics.
func CompareToBaseline(policy, baseline *Result) Savings {
	s := Savings{}
	if baseline.CarbonG > 0 {
		s.CarbonSavingPct = (baseline.CarbonG - policy.CarbonG) / baseline.CarbonG * 100
	}
	if baseline.Latency.N() > 0 && policy.Latency.N() > 0 {
		s.LatencyIncreaseMs = policy.Latency.Mean() - baseline.Latency.Mean()
	}
	if baseline.EnergyKWh > 0 {
		s.EnergyRatio = policy.EnergyKWh / baseline.EnergyKWh
	}
	return s
}

// redeploy re-places all live applications (the §7 extension). Apps keep
// their previous placement when the solver cannot improve on feasibility;
// relocated apps pay the configured data-movement energy at the
// destination zone's current carbon intensity.
func redeploy(cfg Config, res *Result, sites []*deploy.Site, servers []*siteServer,
	live []*liveApp, svc *carbon.Service, solver *placement.HeuristicSolver,
	serverViews func(time.Time) ([]placement.Server, error),
	rttOracle placement.RTTFunc, now time.Time) error {

	// Free every live app's resources so the solver sees the full space.
	type prev struct {
		site   int
		device string
	}
	prevs := make([]prev, len(live))
	for i, a := range live {
		prevs[i] = prev{a.site, a.device}
		srv := a.serverIn(servers, cfg)
		srv.used = srv.used.Sub(a.demand(cfg))
		if srv.used.Dominant(srv.cap) <= 0 && !cfg.ServersAlwaysOn {
			srv.on = false
		}
	}

	apps := make([]placement.App, len(live))
	for i, a := range live {
		apps[i] = placement.App{
			ID:         fmt.Sprintf("redeploy-%d", i),
			Model:      a.model,
			Source:     sites[a.srcSite].City,
			SLOms:      cfg.RTTLimitMs,
			RatePerSec: cfg.RatePerSec,
		}
	}
	pservers, err := serverViews(now)
	if err != nil {
		return err
	}
	prob, err := placement.Build(apps, pservers, rttOracle, nil)
	if err != nil {
		return err
	}
	t0 := time.Now()
	asg, err := solver.Solve(prob, cfg.Policy)
	if err != nil {
		return err
	}
	res.SolveTime += time.Since(t0)
	res.Batches++

	restore := func(i int) {
		a := live[i]
		a.site, a.device = prevs[i].site, prevs[i].device
		srv := a.serverIn(servers, cfg)
		srv.used = srv.used.Add(a.demand(cfg))
		srv.on = true
	}
	for i, j := range asg.ServerOf {
		if j < 0 {
			restore(i)
			continue
		}
		srv := servers[j]
		a := live[i]
		moved := srv.site != prevs[i].site || srv.device.Name != prevs[i].device
		a.site, a.device = srv.site, srv.device.Name
		a.powerW = prob.PowerW[i][j]
		a.rttMs = prob.LatencyMs[i][j]
		srv.used = srv.used.Add(prob.Demand[i][j])
		srv.on = true
		if moved {
			res.Migrations++
			joules := cfg.MigrationDataMB * cfg.MigrationJPerMB
			if joules > 0 {
				ci, err := svc.Current(sites[srv.site].ZoneID, now)
				if err != nil {
					return err
				}
				kwh := joules / 3.6e6
				res.MigrationKWh += kwh
				res.MigrationCarbonG += kwh * ci
				res.EnergyKWh += kwh
				res.CarbonG += kwh * ci
				res.MonthlyCarbonG[int(now.Month())-1] += kwh * ci
			}
		}
	}
	return nil
}
