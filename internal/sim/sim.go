package sim

import (
	"math"
	"time"

	"repro/internal/carbon"
	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/energy"
	"repro/internal/latency"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/router"
)

// World bundles the static datasets a simulation runs against, so sweeps
// (Figures 12-16) can share one expensive setup. All fields are treated as
// immutable once built: any number of engines may read one World
// concurrently.
type World struct {
	Zones  *carbon.Registry
	Traces *carbon.TraceSet
	Cities *latency.CityRegistry
	Dep    *deploy.Deployment
}

// NewWorld builds the default world: the 148-zone registry with generated
// year traces, the embedded city registry, and the integrated CDN
// deployment.
func NewWorld(seed int64) (*World, error) {
	zones, err := carbon.DefaultRegistry(seed)
	if err != nil {
		return nil, err
	}
	cities, err := latency.DefaultCityRegistry()
	if err != nil {
		return nil, err
	}
	dep, err := deploy.Generate(deploy.DefaultOptions(), zones, cities)
	if err != nil {
		return nil, err
	}
	return &World{
		Zones:  zones,
		Traces: carbon.NewGenerator(seed).GenerateTraces(zones),
		Cities: cities,
		Dep:    dep,
	}, nil
}

// Result aggregates one run's outcomes.
type Result struct {
	// CarbonG is total operational emissions in grams CO2eq.
	CarbonG float64
	// EnergyKWh is total energy consumed (dynamic + base of activated
	// servers).
	EnergyKWh float64
	// Latency summarizes placed apps' round-trip latency (ms).
	Latency metrics.Summary
	// MonthlyCarbonG is emissions per calendar month index (0-11).
	MonthlyCarbonG [12]float64
	// MonthlyLatency summarizes latency by month.
	MonthlyLatency [12]metrics.Summary
	// PlacementsByCity counts app placements per hosting city.
	PlacementsByCity *metrics.Counter
	// MonthlyPlacements counts placements per city per month
	// (Figure 13d), keyed "city/month".
	MonthlyPlacements *metrics.Counter
	// LoadCI samples the hosting zone's carbon intensity once per
	// app-hour (Figure 11c), when enabled.
	LoadCI []float64
	// Placed and Unplaced count apps over the whole run.
	Placed, Unplaced int
	// Migrations counts app relocations during periodic redeployment.
	Migrations int
	// MigrationKWh and MigrationCarbonG are the data-movement costs paid
	// by those relocations (included in EnergyKWh / CarbonG).
	MigrationKWh, MigrationCarbonG float64
	// SolveTime accumulates placement solver time.
	SolveTime time.Duration
	// Batches counts placement invocations.
	Batches int
	// Faults records the world-dynamics telemetry — fault events applied,
	// evictions, recovery latency, outage-epoch service quality — when the
	// run has a fault script (nil otherwise, so fault-free results are
	// unchanged).
	Faults *FaultStats
	// Traffic records the request-level telemetry — SLO attainment,
	// latency quantiles, spill-over/drop counts, per-request carbon — in
	// the traffic-driven mode (nil in the classic epoch mode). Its
	// energy/carbon totals are already folded into EnergyKWh / CarbonG.
	Traffic *router.Stats
}

// MeanRTTMs is the run's mean placed round-trip latency.
func (r *Result) MeanRTTMs() float64 { return r.Latency.Mean() }

// liveApp is a committed application.
type liveApp struct {
	srv     int // index into servers (the hosting aggregate server)
	site    int // index into sites
	model   string
	device  string
	powerW  float64
	rttMs   float64
	expires int // epoch index at which it departs
	srcSite int
}

// siteServer is the aggregate per-device server at one site.
type siteServer struct {
	site   int
	device energy.Device
	// baseCap is the undegraded capacity; cap is the effective capacity
	// after any capacity-degradation fault (equal to baseCap otherwise).
	baseCap cluster.Resources
	cap     cluster.Resources
	used    cluster.Resources
	on      bool
	// down marks a crashed server: zero effective capacity, excluded from
	// placement until a recover fault.
	down bool
}

// Run executes the simulation to completion: a thin epoch loop over the
// stepwise Engine.
func Run(cfg Config, w *World) (*Result, error) {
	e, err := NewEngine(cfg, w)
	if err != nil {
		return nil, err
	}
	for !e.Done() {
		if err := e.Step(); err != nil {
			return nil, err
		}
	}
	return e.Finish(), nil
}

// demand reconstructs the app's resource demand on its device.
func (a *liveApp) demand(cfg Config) cluster.Resources {
	prof, err := energy.ProfileFor(a.model, a.device)
	if err != nil {
		panic("sim: profile vanished: " + err.Error())
	}
	occupancy := cfg.RatePerSec * prof.InferenceMs
	return cluster.NewResources(occupancy, 64, prof.MemMB, cfg.RatePerSec*2)
}

// ScenarioWeights exposes the per-site demand/capacity weighting engines
// use, so the shard planner can split region-level arrival and traffic
// rates proportionally to each shard's demand share.
func ScenarioWeights(sites []*deploy.Site, s Scenario) []float64 {
	return weights(sites, s)
}

// weights computes per-site weights for a scenario.
func weights(sites []*deploy.Site, s Scenario) []float64 {
	out := make([]float64, len(sites))
	for i, site := range sites {
		switch s {
		case Uniform:
			out[i] = 1
		case ByPopulation:
			out[i] = math.Max(site.PopulationM, 0.01)
		default:
			out[i] = site.Weight
		}
	}
	return out
}

// sampleWeighted draws an index proportional to weights.
func sampleWeighted(rng *rng.Rand, w []float64) int {
	var total float64
	for _, v := range w {
		total += v
	}
	r := rng.Float64() * total
	for i, v := range w {
		r -= v
		if r <= 0 {
			return i
		}
	}
	return len(w) - 1
}

// poisson draws from a Poisson distribution (Knuth's method; fine for the
// small rates used here).
func poisson(rng *rng.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}

// Savings compares a policy run against a baseline run (typically
// Latency-aware) the way the paper reports results: percentage carbon
// saving and absolute latency increase.
type Savings struct {
	CarbonSavingPct   float64
	LatencyIncreaseMs float64
	// EnergyRatio is policy energy / baseline energy (Figure 15b).
	EnergyRatio float64
}

// CompareToBaseline computes the paper's headline metrics.
func CompareToBaseline(policy, baseline *Result) Savings {
	s := Savings{}
	if baseline.CarbonG > 0 {
		s.CarbonSavingPct = (baseline.CarbonG - policy.CarbonG) / baseline.CarbonG * 100
	}
	if baseline.Latency.N() > 0 && policy.Latency.N() > 0 {
		s.LatencyIncreaseMs = policy.Latency.Mean() - baseline.Latency.Mean()
	}
	if baseline.EnergyKWh > 0 {
		s.EnergyRatio = policy.EnergyKWh / baseline.EnergyKWh
	}
	return s
}
