package sim

import (
	"math"
	"sync"
	"testing"

	"repro/internal/carbon"
	"repro/internal/placement"
)

var (
	worldOnce sync.Once
	world     *World
	worldErr  error
)

func testWorld(t *testing.T) *World {
	t.Helper()
	worldOnce.Do(func() { world, worldErr = NewWorld(42) })
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return world
}

// shortConfig runs one simulated month to keep tests fast.
func shortConfig(region carbon.Region, pol placement.Policy) Config {
	cfg := DefaultConfig(region, pol)
	cfg.Hours = 24 * 30
	cfg.ArrivalsPerHour = 4
	return cfg
}

func TestRunBasics(t *testing.T) {
	w := testWorld(t)
	res, err := Run(shortConfig(carbon.RegionEurope, placement.CarbonAware{}), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed == 0 {
		t.Fatal("no apps placed in a month of arrivals")
	}
	if res.CarbonG <= 0 || res.EnergyKWh <= 0 {
		t.Errorf("carbon=%v energy=%v, want positive", res.CarbonG, res.EnergyKWh)
	}
	if res.Latency.N() != res.Placed {
		t.Errorf("latency samples %d != placed %d", res.Latency.N(), res.Placed)
	}
	if res.Batches == 0 || res.SolveTime <= 0 {
		t.Errorf("solver telemetry missing: batches=%d time=%v", res.Batches, res.SolveTime)
	}
}

func TestRunDeterministic(t *testing.T) {
	w := testWorld(t)
	cfg := shortConfig(carbon.RegionUS, placement.CarbonAware{})
	cfg.Hours = 24 * 7
	a, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if a.CarbonG != b.CarbonG || a.Placed != b.Placed || a.EnergyKWh != b.EnergyKWh {
		t.Errorf("non-deterministic: %v/%v vs %v/%v", a.CarbonG, a.Placed, b.CarbonG, b.Placed)
	}
}

func TestCarbonEdgeBeatsLatencyAware(t *testing.T) {
	// The Figure 11 headline: CarbonEdge saves substantial carbon vs
	// Latency-aware in both regions, at a bounded latency increase.
	w := testWorld(t)
	for _, region := range []carbon.Region{carbon.RegionUS, carbon.RegionEurope} {
		ce, err := Run(shortConfig(region, placement.CarbonAware{}), w)
		if err != nil {
			t.Fatal(err)
		}
		la, err := Run(shortConfig(region, placement.LatencyAware{}), w)
		if err != nil {
			t.Fatal(err)
		}
		s := CompareToBaseline(ce, la)
		if s.CarbonSavingPct < 10 {
			t.Errorf("%v: carbon saving %.1f%%, want >= 10%% (paper: 49.5%%/67.8%%)", region, s.CarbonSavingPct)
		}
		if s.LatencyIncreaseMs < 0 {
			t.Errorf("%v: latency decreased by %.1f ms under CarbonEdge?", region, -s.LatencyIncreaseMs)
		}
		if s.LatencyIncreaseMs > cfg20RTT() {
			t.Errorf("%v: latency increase %.1f ms exceeds the RTT limit", region, s.LatencyIncreaseMs)
		}
	}
}

func cfg20RTT() float64 { return 20 }

func TestEuropeSavesMoreThanUS(t *testing.T) {
	// Paper: Europe sees larger savings (67.8% vs 49.5%) because its
	// zones are greener and more varied.
	w := testWorld(t)
	saving := func(region carbon.Region) float64 {
		ce, err := Run(shortConfig(region, placement.CarbonAware{}), w)
		if err != nil {
			t.Fatal(err)
		}
		la, err := Run(shortConfig(region, placement.LatencyAware{}), w)
		if err != nil {
			t.Fatal(err)
		}
		return CompareToBaseline(ce, la).CarbonSavingPct
	}
	us, eu := saving(carbon.RegionUS), saving(carbon.RegionEurope)
	if eu <= us {
		t.Errorf("EU saving %.1f%% <= US saving %.1f%%, paper reports the opposite ordering", eu, us)
	}
}

func TestLatencyLimitSweepDiminishingReturns(t *testing.T) {
	// Figure 12: savings grow with the latency limit, with diminishing
	// returns; latency overhead grows roughly linearly.
	w := testWorld(t)
	limits := []float64{5, 10, 20, 30}
	savings := make([]float64, len(limits))
	increases := make([]float64, len(limits))
	for i, lim := range limits {
		cfgCE := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
		cfgCE.Hours = 24 * 14
		cfgCE.RTTLimitMs = lim
		ce, err := Run(cfgCE, w)
		if err != nil {
			t.Fatal(err)
		}
		cfgLA := cfgCE
		cfgLA.Policy = placement.LatencyAware{}
		la, err := Run(cfgLA, w)
		if err != nil {
			t.Fatal(err)
		}
		s := CompareToBaseline(ce, la)
		savings[i] = s.CarbonSavingPct
		increases[i] = s.LatencyIncreaseMs
	}
	for i := 1; i < len(limits); i++ {
		if savings[i] < savings[i-1]-3 {
			t.Errorf("savings dropped from %.1f%% to %.1f%% as limit rose %v->%v ms",
				savings[i-1], savings[i], limits[i-1], limits[i])
		}
		if increases[i] < increases[i-1]-2 {
			t.Errorf("latency increase shrank materially as limit rose: %.1f -> %.1f", increases[i-1], increases[i])
		}
	}
	if savings[len(savings)-1] <= savings[0] {
		t.Errorf("loosening 5->30 ms gained nothing: %.1f%% -> %.1f%%", savings[0], savings[len(savings)-1])
	}
}

func TestLoadDistributionShiftsGreen(t *testing.T) {
	// Figure 11c: CarbonEdge's executed load sees lower carbon intensity
	// than Latency-aware's.
	w := testWorld(t)
	cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.CollectLoadCI = true
	ce, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = placement.LatencyAware{}
	la, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if mean(ce.LoadCI) >= mean(la.LoadCI) {
		t.Errorf("CarbonEdge load CI %.0f >= Latency-aware %.0f", mean(ce.LoadCI), mean(la.LoadCI))
	}
}

func TestSeasonalityTracking(t *testing.T) {
	w := testWorld(t)
	cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 24 * 60 // two months
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.MonthlyCarbonG[0] <= 0 || res.MonthlyCarbonG[1] <= 0 {
		t.Errorf("monthly carbon = %v, want both months positive", res.MonthlyCarbonG[:2])
	}
	var total float64
	for _, v := range res.MonthlyCarbonG {
		total += v
	}
	if math.Abs(total-res.CarbonG) > 1e-6 {
		t.Errorf("monthly sum %v != total %v", total, res.CarbonG)
	}
	if len(res.MonthlyPlacements.Labels()) == 0 {
		t.Error("no monthly placement counts recorded")
	}
}

func TestDemandCapacityScenarios(t *testing.T) {
	// Figure 14: scenario changes must alter outcomes but keep the
	// CarbonEdge advantage.
	w := testWorld(t)
	for _, scn := range []Scenario{Uniform, ByPopulation} {
		cfg := shortConfig(carbon.RegionUS, placement.CarbonAware{})
		cfg.Hours = 24 * 14
		cfg.Demand = scn
		cfg.Capacity = scn
		ce, err := Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		cfgLA := cfg
		cfgLA.Policy = placement.LatencyAware{}
		la, err := Run(cfgLA, w)
		if err != nil {
			t.Fatal(err)
		}
		s := CompareToBaseline(ce, la)
		if s.CarbonSavingPct <= 0 {
			t.Errorf("scenario %v: no carbon saving (%.1f%%)", scn, s.CarbonSavingPct)
		}
	}
}

func TestActivationAccounting(t *testing.T) {
	// With ServersAlwaysOn=false, base power of woken servers accrues,
	// so total energy must exceed the always-counted dynamic energy of
	// an identical run.
	w := testWorld(t)
	cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 24 * 7
	cfg.ServersAlwaysOn = false
	withBase, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ServersAlwaysOn = true
	dynamicOnly, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if withBase.EnergyKWh <= dynamicOnly.EnergyKWh {
		t.Errorf("base-power accounting missing: %v <= %v", withBase.EnergyKWh, dynamicOnly.EnergyKWh)
	}
}

func TestConfigValidation(t *testing.T) {
	w := testWorld(t)
	bad := []Config{
		{},
		{Hours: 10},
		{Hours: 10, RTTLimitMs: 20},
		func() Config {
			c := DefaultConfig(carbon.RegionUS, placement.CarbonAware{})
			c.Devices = nil
			return c
		}(),
		func() Config {
			c := DefaultConfig(carbon.RegionUS, placement.CarbonAware{})
			c.RatePerSec = 0
			return c
		}(),
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, w); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestScenarioStrings(t *testing.T) {
	if Uniform.String() != "uniform" || ByPopulation.String() != "population" || BySiteWeight.String() != "site-weight" {
		t.Error("scenario strings wrong")
	}
}

func TestCompareToBaselineEdgeCases(t *testing.T) {
	s := CompareToBaseline(&Result{}, &Result{})
	if s.CarbonSavingPct != 0 || s.EnergyRatio != 0 {
		t.Errorf("empty compare = %+v", s)
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var t float64
	for _, v := range xs {
		t += v
	}
	return t / float64(len(xs))
}

func TestRedeploymentImprovesCarbon(t *testing.T) {
	// §7 extension: with long-lived apps, periodically re-placing them
	// tracks carbon-intensity drift and reduces emissions vs static
	// placement (for free when migration costs nothing).
	w := testWorld(t)
	cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 24 * 21
	cfg.AppLifetimeHours = 24 * 7 // long-lived: placements go stale
	static, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RedeployEveryHours = 12
	dynamic, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if dynamic.Migrations == 0 {
		t.Fatal("redeployment never migrated anything")
	}
	if dynamic.CarbonG > static.CarbonG*1.02 {
		t.Errorf("redeployment worsened carbon: %.0f vs %.0f g", dynamic.CarbonG, static.CarbonG)
	}
}

func TestMigrationCostAccrued(t *testing.T) {
	w := testWorld(t)
	cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 24 * 14
	cfg.AppLifetimeHours = 24 * 7
	cfg.RedeployEveryHours = 12
	cfg.MigrationDataMB = 500
	cfg.MigrationJPerMB = 0.2
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Skip("no migrations occurred in this window")
	}
	if res.MigrationKWh <= 0 || res.MigrationCarbonG <= 0 {
		t.Errorf("migration costs not accrued: %v kWh, %v g over %d migrations",
			res.MigrationKWh, res.MigrationCarbonG, res.Migrations)
	}
	wantKWh := float64(res.Migrations) * 500 * 0.2 / 3.6e6
	if math.Abs(res.MigrationKWh-wantKWh) > 1e-9 {
		t.Errorf("migration energy %v kWh, want %v", res.MigrationKWh, wantKWh)
	}
}

func TestRedeploymentPreservesFeasibility(t *testing.T) {
	// After redeployment every live app must still be hosted and server
	// accounting must stay consistent (no capacity leak: a full release/
	// re-place cycle returns used resources to a consistent state).
	w := testWorld(t)
	cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 24 * 10
	cfg.AppLifetimeHours = 48
	cfg.RedeployEveryHours = 6
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed == 0 {
		t.Fatal("nothing placed")
	}
	// Determinism must hold with redeployment enabled too.
	res2, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.CarbonG != res2.CarbonG || res.Migrations != res2.Migrations {
		t.Errorf("redeployment non-deterministic: %v/%d vs %v/%d",
			res.CarbonG, res.Migrations, res2.CarbonG, res2.Migrations)
	}
}
