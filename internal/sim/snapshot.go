package sim

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/router"
)

// Snapshot is the full dynamic state of an Engine at an epoch boundary:
// everything Step mutates, and nothing derivable from (Config, World).
// It is plain data — JSON-serializable, no closures — so a checkpoint
// file survives process restarts. Timeline events are not serialized;
// they are re-registered by kind on restore (the epoch phases from the
// schedule, the fault queue from the config's script minus the events
// already drained).
//
// The proof obligation (TestSnapshotRestoreEquivalence): for any epoch
// N, run-to-N + Snapshot + NewEngineFrom + run-to-end produces a Result
// byte-identical to an uninterrupted run, in every mode.
type Snapshot struct {
	// ConfigSig fingerprints the Config the snapshot was taken under;
	// NewEngineFrom rejects a snapshot whose signature does not match the
	// config it is being restored into.
	ConfigSig string `json:"config_sig"`
	// Epoch is the index of the next epoch Step would execute.
	Epoch int `json:"epoch"`
	// RNG is the arrival stream position (rng.Source state).
	RNG uint64 `json:"rng"`

	AppSeq        int                `json:"app_seq"`
	EvictSeq      int                `json:"evict_seq"`
	ForceRedeploy bool               `json:"force_redeploy,omitempty"`
	DownCount     int                `json:"down_count,omitempty"`
	FcErr         map[string]float64 `json:"fc_err,omitempty"`

	Servers []ServerSnap  `json:"servers"`
	Live    []LiveAppSnap `json:"live"`
	Pending []PendingSnap `json:"pending,omitempty"`

	// Cross-shard exchange mailboxes (empty outside coordinator runs):
	// the outbox of forwarded-but-undrained arrivals and the inboxes of
	// injected work not yet due.
	Outbox []ForwardedApp `json:"outbox,omitempty"`
	InApps []InboxAppSnap `json:"inbox_apps,omitempty"`
	InReqs []InboxReqSnap `json:"inbox_reqs,omitempty"`

	Result ResultState `json:"result"`

	// Recorder carries the flight recorder's ring (Config.Obs runs only)
	// so a post-mortem on a restored checkpoint still sees the events
	// leading up to it. Pure telemetry: restoring it never changes the
	// trajectory.
	Recorder *obs.RecorderState `json:"recorder,omitempty"`
}

// ServerSnap is one aggregate site server's dynamic state. Site, Device,
// and BaseCap re-create servers added by scale-out faults (indices past
// the config's initial fleet); for initial servers they must match the
// config-derived values.
type ServerSnap struct {
	Site    int               `json:"site"`
	Device  string            `json:"device"`
	BaseCap cluster.Resources `json:"base_cap"`
	Cap     cluster.Resources `json:"cap"`
	Used    cluster.Resources `json:"used"`
	On      bool              `json:"on"`
	Down    bool              `json:"down,omitempty"`
}

// LiveAppSnap is one committed application.
type LiveAppSnap struct {
	Srv     int     `json:"srv"`
	Site    int     `json:"site"`
	Model   string  `json:"model"`
	Device  string  `json:"device"`
	PowerW  float64 `json:"power_w"`
	RTTMs   float64 `json:"rtt_ms"`
	Expires int     `json:"expires"`
	SrcSite int     `json:"src_site"`
}

// PendingSnap is one backlog entry awaiting placement.
type PendingSnap struct {
	App       placement.App `json:"app"`
	Src       int           `json:"src"`
	Expires   int           `json:"expires"`
	EvictedAt int           `json:"evicted_at"`
	Injected  bool          `json:"injected,omitempty"`
}

// InboxAppSnap is one coordinator-injected arrival awaiting its epoch.
type InboxAppSnap struct {
	Epoch int    `json:"epoch"`
	Model string `json:"model"`
}

// InboxReqSnap is coordinator-injected request volume awaiting its epoch.
type InboxReqSnap struct {
	Epoch int   `json:"epoch"`
	N     int64 `json:"n"`
}

// ResultState is the serializable form of a Result. Maps are encoded
// with sorted keys by encoding/json, so two equal states encode to
// identical bytes — the property the resume-equivalence tests and the
// sweep journal compare on.
type ResultState struct {
	CarbonG           float64                  `json:"carbon_g"`
	EnergyKWh         float64                  `json:"energy_kwh"`
	Latency           metrics.SummaryState     `json:"latency"`
	MonthlyCarbonG    [12]float64              `json:"monthly_carbon_g"`
	MonthlyLatency    [12]metrics.SummaryState `json:"monthly_latency"`
	PlacementsByCity  map[string]int64         `json:"placements_by_city"`
	MonthlyPlacements map[string]int64         `json:"monthly_placements"`
	LoadCI            []float64                `json:"load_ci,omitempty"`
	Placed            int                      `json:"placed"`
	Unplaced          int                      `json:"unplaced"`
	Migrations        int                      `json:"migrations"`
	MigrationKWh      float64                  `json:"migration_kwh"`
	MigrationCarbonG  float64                  `json:"migration_carbon_g"`
	SolveTimeNs       int64                    `json:"solve_time_ns"`
	Batches           int                      `json:"batches"`
	Faults            *FaultStats              `json:"faults,omitempty"`
	Traffic           *router.StatsState       `json:"traffic,omitempty"`
}

// State exports the result's accumulator.
func (r *Result) State() ResultState {
	st := ResultState{
		CarbonG:           r.CarbonG,
		EnergyKWh:         r.EnergyKWh,
		Latency:           r.Latency.State(),
		MonthlyCarbonG:    r.MonthlyCarbonG,
		PlacementsByCity:  r.PlacementsByCity.State(),
		MonthlyPlacements: r.MonthlyPlacements.State(),
		LoadCI:            append([]float64(nil), r.LoadCI...),
		Placed:            r.Placed,
		Unplaced:          r.Unplaced,
		Migrations:        r.Migrations,
		MigrationKWh:      r.MigrationKWh,
		MigrationCarbonG:  r.MigrationCarbonG,
		SolveTimeNs:       int64(r.SolveTime),
		Batches:           r.Batches,
	}
	for m := range r.MonthlyLatency {
		st.MonthlyLatency[m] = r.MonthlyLatency[m].State()
	}
	if r.Faults != nil {
		fs := *r.Faults
		st.Faults = &fs
	}
	if r.Traffic != nil {
		ts := r.Traffic.State()
		st.Traffic = &ts
	}
	return st
}

// Restore rebuilds a Result from an exported state. The Traffic stats
// are not restored here: they live in the engine's router (see
// NewEngineFrom), and a standalone restored Result carries them as a
// detached accumulator.
func (st ResultState) Restore() (*Result, error) {
	r := &Result{
		CarbonG:           st.CarbonG,
		EnergyKWh:         st.EnergyKWh,
		Latency:           metrics.SummaryFromState(st.Latency),
		MonthlyCarbonG:    st.MonthlyCarbonG,
		PlacementsByCity:  metrics.CounterFromState(st.PlacementsByCity),
		MonthlyPlacements: metrics.CounterFromState(st.MonthlyPlacements),
		LoadCI:            append([]float64(nil), st.LoadCI...),
		Placed:            st.Placed,
		Unplaced:          st.Unplaced,
		Migrations:        st.Migrations,
		MigrationKWh:      st.MigrationKWh,
		MigrationCarbonG:  st.MigrationCarbonG,
		SolveTime:         time.Duration(st.SolveTimeNs),
		Batches:           st.Batches,
	}
	for m := range st.MonthlyLatency {
		r.MonthlyLatency[m] = metrics.SummaryFromState(st.MonthlyLatency[m])
	}
	if st.Faults != nil {
		fs := *st.Faults
		r.Faults = &fs
	}
	if st.Traffic != nil {
		lat, err := metrics.SketchFromState(st.Traffic.Latency)
		if err != nil {
			return nil, fmt.Errorf("sim: restoring traffic latency: %w", err)
		}
		r.Traffic = &router.Stats{
			Requests:       st.Traffic.Requests,
			SLOMet:         st.Traffic.SLOMet,
			Spilled:        st.Traffic.Spilled,
			Dropped:        st.Traffic.Dropped,
			OverloadSlices: st.Traffic.OverloadSlices,
			Latency:        lat,
			EnergyKWh:      st.Traffic.EnergyKWh,
			CarbonG:        st.Traffic.CarbonG,
			ByReplica:      metrics.CounterFromState(st.Traffic.ByReplica),
		}
	}
	return r, nil
}

// ConfigSig fingerprints the fields of a Config that determine a run's
// trajectory. Interface and pointer fields are rendered by value so the
// signature is stable across processes. Obs is deliberately excluded:
// tracing never changes the trajectory, so a checkpoint taken with
// observability on restores cleanly into a run with it off (and vice
// versa), and sweep journals stay valid across obs toggles.
// ReferenceSolver is excluded for the same reason: both solver paths
// produce byte-identical assignments, so the knob cannot change a
// trajectory.
func ConfigSig(cfg Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d region=%v sites=%v forward=%t policy=%T%+v rtt=%g hours=%d start=%d arrivals=%g life=%d",
		cfg.Seed, cfg.Region, cfg.Sites, cfg.ForwardUnplaced, cfg.Policy, cfg.Policy, cfg.RTTLimitMs,
		cfg.Hours, cfg.StartHour, cfg.ArrivalsPerHour, cfg.AppLifetimeHours)
	fmt.Fprintf(&b, " model=%s models=%v rate=%g devices=%v cap=%g demand=%v capacity=%v alwayson=%t",
		cfg.Model, cfg.Models, cfg.RatePerSec, cfg.Devices, cfg.CapacityMilliPerSite,
		cfg.Demand, cfg.Capacity, cfg.ServersAlwaysOn)
	fmt.Fprintf(&b, " horizon=%d forecaster=%T%+v batch=%d loadci=%t redeploy=%d migmb=%g migj=%g warm=%t fixed=%t",
		cfg.ForecastHorizonHours, cfg.Forecaster, cfg.Forecaster, cfg.BatchHours, cfg.CollectLoadCI,
		cfg.RedeployEveryHours, cfg.MigrationDataMB, cfg.MigrationJPerMB, cfg.WarmRedeploy, cfg.FixedLoop)
	if cfg.Traffic != nil {
		fmt.Fprintf(&b, " traffic=%+v", *cfg.Traffic)
	}
	if cfg.Faults != nil {
		fmt.Fprintf(&b, " faults=%+v", *cfg.Faults)
	}
	return b.String()
}

// Snapshot captures the engine's full dynamic state. It must be called
// between Steps (an epoch boundary) — the only instants at which the
// timeline holds no partially-dispatched epoch. The returned snapshot
// shares no mutable state with the engine.
func (e *Engine) Snapshot() *Snapshot {
	snap := &Snapshot{
		ConfigSig:     ConfigSig(e.cfg),
		Epoch:         e.epoch,
		RNG:           e.rngSrc.State(),
		AppSeq:        e.appSeq,
		EvictSeq:      e.evictSeq,
		ForceRedeploy: e.forceRedeploy,
		DownCount:     e.downCount,
		Result:        e.res.State(),
	}
	if len(e.fcErr) > 0 {
		snap.FcErr = make(map[string]float64, len(e.fcErr))
		for z, f := range e.fcErr {
			snap.FcErr[z] = f
		}
	}
	snap.Servers = make([]ServerSnap, len(e.servers))
	for j, srv := range e.servers {
		snap.Servers[j] = ServerSnap{
			Site:    srv.site,
			Device:  srv.device.Name,
			BaseCap: srv.baseCap,
			Cap:     srv.cap,
			Used:    srv.used,
			On:      srv.on,
			Down:    srv.down,
		}
	}
	snap.Live = make([]LiveAppSnap, len(e.live))
	for i, a := range e.live {
		snap.Live[i] = LiveAppSnap{
			Srv: a.srv, Site: a.site, Model: a.model, Device: a.device,
			PowerW: a.powerW, RTTMs: a.rttMs, Expires: a.expires, SrcSite: a.srcSite,
		}
	}
	if len(e.pending) > 0 {
		snap.Pending = make([]PendingSnap, len(e.pending))
		for i, p := range e.pending {
			snap.Pending[i] = PendingSnap{App: p.app, Src: p.src, Expires: p.expires, EvictedAt: p.evictedAt, Injected: p.injected}
		}
	}
	if len(e.outbox) > 0 {
		snap.Outbox = append([]ForwardedApp(nil), e.outbox...)
	}
	for _, p := range e.inApps {
		snap.InApps = append(snap.InApps, InboxAppSnap{Epoch: p.epoch, Model: p.model})
	}
	for _, p := range e.inReqs {
		snap.InReqs = append(snap.InReqs, InboxReqSnap{Epoch: p.epoch, N: p.n})
	}
	if e.recorder != nil {
		st := e.recorder.State()
		snap.Recorder = &st
	}
	return snap
}

// NewEngineFrom rebuilds an engine from a snapshot taken under the same
// (Config, World): static state is reconstructed from the config exactly
// as NewEngine does, dynamic state is loaded from the snapshot, and the
// timeline's events are re-registered by kind — the epoch phases for the
// snapshot's epoch, the fault queue from the config's script minus the
// events the snapshotted run had already drained. Stepping the restored
// engine to completion is byte-identical to never having stopped.
func NewEngineFrom(cfg Config, w *World, snap *Snapshot) (*Engine, error) {
	if snap == nil {
		return nil, fmt.Errorf("sim: nil snapshot")
	}
	if sig := ConfigSig(cfg); snap.ConfigSig != sig {
		return nil, fmt.Errorf("sim: snapshot config signature mismatch:\n  snapshot: %s\n  restore:  %s", snap.ConfigSig, sig)
	}
	if snap.Epoch < 0 || snap.Epoch > cfg.Hours {
		return nil, fmt.Errorf("sim: snapshot epoch %d outside run span [0, %d]", snap.Epoch, cfg.Hours)
	}
	e, err := NewEngine(cfg, w)
	if err != nil {
		return nil, err
	}
	if len(snap.Servers) < len(e.servers) {
		return nil, fmt.Errorf("sim: snapshot has %d servers, config builds %d", len(snap.Servers), len(e.servers))
	}

	// Servers: the initial fleet is overlaid in place; servers past it
	// were added by scale-out faults and are re-created (and re-registered
	// with the placement workspace, keeping index alignment).
	for j, ss := range snap.Servers {
		if ss.Site < 0 || ss.Site >= len(e.sites) {
			return nil, fmt.Errorf("sim: snapshot server %d references site %d of %d", j, ss.Site, len(e.sites))
		}
		if j < len(e.servers) {
			srv := &e.servers[j]
			if srv.site != ss.Site || srv.device.Name != ss.Device {
				return nil, fmt.Errorf("sim: snapshot server %d is %s@site%d, config builds %s@site%d",
					j, ss.Device, ss.Site, srv.device.Name, srv.site)
			}
			srv.baseCap, srv.cap, srv.used = ss.BaseCap, ss.Cap, ss.Used
			srv.on, srv.down = ss.On, ss.Down
			continue
		}
		dev, err := energy.DeviceByName(ss.Device)
		if err != nil {
			return nil, fmt.Errorf("sim: snapshot server %d: %w", j, err)
		}
		e.servers = append(e.servers, siteServer{
			site:    ss.Site,
			device:  dev,
			baseCap: ss.BaseCap,
			cap:     ss.Cap,
			used:    ss.Used,
			on:      ss.On,
			down:    ss.Down,
		})
		if err := e.ws.AddServers(placement.Server{
			ID:         fmt.Sprintf("srv-%d", j),
			DC:         e.sites[ss.Site].City,
			Device:     dev.Name,
			BasePowerW: dev.IdleW,
			PoweredOn:  ss.On,
			Free:       ss.Cap.Sub(ss.Used),
		}); err != nil {
			return nil, err
		}
	}

	e.live = make([]liveApp, len(snap.Live))
	for i, ls := range snap.Live {
		if ls.Srv < 0 || ls.Srv >= len(e.servers) {
			return nil, fmt.Errorf("sim: snapshot live app %d references server %d of %d", i, ls.Srv, len(e.servers))
		}
		e.live[i] = liveApp{
			srv: ls.Srv, site: ls.Site, model: ls.Model, device: ls.Device,
			powerW: ls.PowerW, rttMs: ls.RTTMs, expires: ls.Expires, srcSite: ls.SrcSite,
		}
	}
	e.pending = nil
	for _, ps := range snap.Pending {
		e.pending = append(e.pending, pendingApp{app: ps.App, src: ps.Src, expires: ps.Expires, evictedAt: ps.EvictedAt, injected: ps.Injected})
	}
	e.outbox = append([]ForwardedApp(nil), snap.Outbox...)
	e.inApps, e.inReqs = nil, nil
	for _, ps := range snap.InApps {
		e.inApps = append(e.inApps, inboxApp{epoch: ps.Epoch, model: ps.Model})
	}
	for _, ps := range snap.InReqs {
		e.inReqs = append(e.inReqs, inboxReq{epoch: ps.Epoch, n: ps.N})
	}

	e.rngSrc.Restore(snap.RNG)
	e.appSeq, e.evictSeq = snap.AppSeq, snap.EvictSeq
	e.forceRedeploy, e.downCount = snap.ForceRedeploy, snap.DownCount
	e.fcErr = nil
	if cfg.Faults != nil || len(snap.FcErr) > 0 {
		e.fcErr = map[string]float64{}
	}
	for z, f := range snap.FcErr {
		e.fcErr[z] = f
	}

	// Result: rebuild the accumulator, then re-attach the live traffic
	// stats to the engine's router so stepTraffic keeps accruing into the
	// restored totals.
	res, err := snap.Result.Restore()
	if err != nil {
		return nil, err
	}
	e.res = res
	if e.trouter != nil {
		if snap.Result.Traffic == nil {
			return nil, fmt.Errorf("sim: traffic mode restore needs traffic stats in the snapshot")
		}
		if err := e.trouter.RestoreStats(*snap.Result.Traffic); err != nil {
			return nil, err
		}
		e.res.Traffic = e.trouter.Stats()
	}
	if cfg.Faults != nil && e.res.Faults == nil {
		e.res.Faults = &FaultStats{}
	}

	// Re-register timeline events by kind. The fault queue replays the
	// config's script minus everything drained before the snapshot: the
	// last completed epoch popped every event due at or before its
	// instant.
	e.epoch = snap.Epoch
	if e.faultq != nil {
		e.faultq = events.NewTimeline()
		drainedThrough := e.start.Add(time.Duration(snap.Epoch-1) * time.Hour)
		for _, f := range e.cfg.Faults.Expand() {
			at := e.start.Add(f.At)
			if snap.Epoch > 0 && !at.After(drainedThrough) {
				continue
			}
			f := f
			e.faultq.Schedule(at, string(f.Kind), func(now time.Time) error {
				return e.applyFault(f, now)
			})
		}
	}
	if e.tl != nil {
		e.tl = events.NewTimeline()
		if !e.Done() {
			e.scheduleEpoch(e.epoch)
		}
	}
	// Flight recorder: reload the snapshotted ring when the restoring
	// config also enables the recorder (cfg.Obs drives e.recorder's
	// existence; the snapshot only refills it).
	if e.recorder != nil && snap.Recorder != nil {
		e.recorder = obs.RecorderFromState(*snap.Recorder)
	}
	return e, nil
}
