package sim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/carbon"
	"repro/internal/events"
	"repro/internal/placement"
	"repro/internal/traffic"
)

// encodeResult renders a result's serializable state with wall-clock
// telemetry stripped — the byte-identity the checkpoint subsystem
// promises.
func encodeResult(t *testing.T, r *Result) []byte {
	t.Helper()
	st := r.State()
	st.SolveTimeNs = 0
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runInterrupted drives cfg to snapAt epochs, snapshots, round-trips the
// snapshot through JSON (a restore always comes off disk), restores into
// a fresh engine, and runs to the end.
func runInterrupted(t *testing.T, cfg Config, w *World, snapAt int) *Result {
	t.Helper()
	e, err := NewEngine(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	for e.Epoch() < snapAt && !e.Done() {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := json.Marshal(e.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	// Keep stepping the original past the snapshot point before the
	// restore runs, so shared-state leaks between the two engines show up.
	for i := 0; i < 3 && !e.Done(); i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewEngineFrom(cfg, w, &snap)
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != snapAt {
		t.Fatalf("restored engine at epoch %d, want %d", r.Epoch(), snapAt)
	}
	for !r.Done() {
		if err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return r.Finish()
}

// TestSnapshotRestoreEquivalence is the tentpole proof: for every mode,
// run-to-N + snapshot + restore + run-to-end is byte-identical to an
// uninterrupted run. Pairs run on concurrent goroutines over the shared
// world so -race doubles this as the restore path's data-race check.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	w := testWorld(t)
	mk := func(mutate func(*Config)) Config {
		cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
		cfg.Hours = 24 * 8
		mutate(&cfg)
		return cfg
	}
	crashCity := hotCity(t, mk(func(cfg *Config) {}), w)
	configs := map[string]Config{
		"classic": mk(func(cfg *Config) {}),
		"redeploy": mk(func(cfg *Config) {
			cfg.RedeployEveryHours = 24
			cfg.MigrationDataMB, cfg.MigrationJPerMB = 500, 0.2
		}),
		"batched": mk(func(cfg *Config) { cfg.BatchHours = 6; cfg.ServersAlwaysOn = false }),
		"traffic": mk(func(cfg *Config) {
			cfg.Traffic = &traffic.Config{Scenario: traffic.FlashCrowd, RPS: 900}
			cfg.CollectLoadCI = true
		}),
		"faults": mk(func(cfg *Config) {
			cfg.Faults = &events.FaultScript{Faults: []events.Fault{
				{At: 48 * time.Hour, Kind: events.FaultCrash, Site: crashCity, For: 72 * time.Hour},
				{At: 60 * time.Hour, Kind: events.FaultScaleOut, Site: crashCity, CapacityMilli: 2000, Count: 2},
				{At: 30 * time.Hour, Kind: events.FaultForecastError, Zone: w.Dep.InRegion(cfg.Region)[0].ZoneID, Factor: 3, For: 100 * time.Hour},
			}}
		}),
		"fixed-loop": mk(func(cfg *Config) { cfg.FixedLoop = true }),
	}
	// Snapshot points: the edges, inside the crash window (55), and after
	// the scale-out with the recover still ahead (100).
	snapPoints := []int{0, 1, 55, 100, 24 * 8}
	for name, cfg := range configs {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var uninterrupted *Result
			var uerr error
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				uninterrupted, uerr = Run(cfg, w)
			}()
			interrupted := make([]*Result, len(snapPoints))
			for i, at := range snapPoints {
				i, at := i, at
				wg.Add(1)
				go func() {
					defer wg.Done()
					interrupted[i] = runInterrupted(t, cfg, w, at)
				}()
			}
			wg.Wait()
			if uerr != nil {
				t.Fatal(uerr)
			}
			want := encodeResult(t, uninterrupted)
			for i, at := range snapPoints {
				if got := encodeResult(t, interrupted[i]); !bytes.Equal(got, want) {
					t.Errorf("snapshot at epoch %d diverged from uninterrupted run:\nresumed:       %s\nuninterrupted: %s", at, got, want)
				}
			}
		})
	}
}

func TestSnapshotRejectsMismatchedConfig(t *testing.T) {
	w := testWorld(t)
	cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 24
	e, err := NewEngine(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := e.Snapshot()

	other := cfg
	other.Seed++
	if _, err := NewEngineFrom(other, w, snap); err == nil {
		t.Error("snapshot restored under a different seed")
	}
	other = cfg
	other.Policy = placement.LatencyAware{}
	if _, err := NewEngineFrom(other, w, snap); err == nil {
		t.Error("snapshot restored under a different policy")
	}
	if _, err := NewEngineFrom(cfg, w, nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	bad := *snap
	bad.Epoch = cfg.Hours + 1
	if _, err := NewEngineFrom(cfg, w, &bad); err == nil {
		t.Error("snapshot with out-of-span epoch accepted")
	}
}

func TestSnapshotSharesNoMutableState(t *testing.T) {
	// Stepping the engine after Snapshot must not mutate the snapshot:
	// checkpoints are often held in memory while the run continues.
	w := testWorld(t)
	cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 48
	e, err := NewEngine(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := e.Snapshot()
	before, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for !e.Done() {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	after, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("snapshot mutated by continued stepping")
	}
}

func TestRestoredResultMatchesDeepEqual(t *testing.T) {
	// Beyond byte-identical encodings, the restored accumulator itself
	// must equal the uninterrupted one structurally (counters, summaries,
	// monthly breakdowns).
	w := testWorld(t)
	cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 24 * 5
	uninterrupted, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	resumed := runInterrupted(t, cfg, w, 61)
	if !reflect.DeepEqual(stripClock(uninterrupted), stripClock(resumed)) {
		t.Errorf("resumed result differs structurally:\nresumed:       %+v\nuninterrupted: %+v",
			stripClock(resumed), stripClock(uninterrupted))
	}
}
