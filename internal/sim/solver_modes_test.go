package sim

import (
	"reflect"
	"testing"
)

// TestEngineReferenceSolverByteIdentical locks in that the flattened
// solver path (validation skipped for engine-assembled problems, memoized
// cost rows, dirty-app work queue) is pure mechanics: every engine mode
// produces byte-identical results with Config.ReferenceSolver on (the
// pre-flattening dense-sweep solver with per-solve validation) and off
// (the default fast path). This is also why ReferenceSolver is excluded
// from ConfigSig.
func TestEngineReferenceSolverByteIdentical(t *testing.T) {
	w := allocWorld(t)
	for name, cfg := range allocModes(300) {
		t.Run(name, func(t *testing.T) {
			cfg.Hours = 24 * 6
			fast, err := NewEngine(cfg, w)
			if err != nil {
				t.Fatal(err)
			}
			want, err := finalState(fast)
			if err != nil {
				t.Fatal(err)
			}
			ref := cfg
			ref.ReferenceSolver = true
			slow, err := NewEngine(ref, w)
			if err != nil {
				t.Fatal(err)
			}
			got, err := finalState(slow)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("reference-solver run diverged from flattened-solver run")
			}
		})
	}
}
