package sim

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/carbon"
	"repro/internal/events"
	"repro/internal/placement"
	"repro/internal/traffic"
)

// TestTimelineMatchesFixedLoop proves the tentpole equivalence: with no
// fault events scheduled, the event-timeline dispatch replays the
// pre-refactor hard-coded epoch loop byte for byte — in the classic epoch
// mode, with periodic redeployment, and in the traffic-driven mode. Each
// pair runs on concurrent goroutines over the shared world, so under
// -race this doubles as the dispatcher's data-race check.
func TestTimelineMatchesFixedLoop(t *testing.T) {
	w := testWorld(t)
	mk := func(mutate func(*Config)) Config {
		cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
		cfg.Hours = 24 * 10
		mutate(&cfg)
		return cfg
	}
	configs := map[string]Config{
		"classic":  mk(func(cfg *Config) {}),
		"us":       mk(func(cfg *Config) { cfg.Region = carbon.RegionUS; cfg.Seed = 7 }),
		"latency":  mk(func(cfg *Config) { cfg.Policy = placement.LatencyAware{} }),
		"redeploy": mk(func(cfg *Config) { cfg.RedeployEveryHours = 24 }),
		"batched":  mk(func(cfg *Config) { cfg.BatchHours = 6 }),
		"powered":  mk(func(cfg *Config) { cfg.ServersAlwaysOn = false }),
		"traffic": mk(func(cfg *Config) {
			cfg.Traffic = &traffic.Config{Scenario: traffic.FlashCrowd, RPS: 900}
		}),
	}
	for name, cfg := range configs {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var timeline, fixed *Result
			var terr, ferr error
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				timeline, terr = Run(cfg, w)
			}()
			go func() {
				defer wg.Done()
				fcfg := cfg
				fcfg.FixedLoop = true
				fixed, ferr = Run(fcfg, w)
			}()
			wg.Wait()
			if terr != nil || ferr != nil {
				t.Fatalf("timeline err %v, fixed-loop err %v", terr, ferr)
			}
			if !reflect.DeepEqual(stripClock(timeline), stripClock(fixed)) {
				t.Errorf("timeline result diverged from the fixed loop:\ntimeline: %+v\nfixed:    %+v",
					stripClock(timeline), stripClock(fixed))
			}
		})
	}
}

// hotCity finds the city hosting the most placements in a fault-free
// reference run — the deterministic target for crash scenarios.
func hotCity(t *testing.T, cfg Config, w *World) string {
	t.Helper()
	ref, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	var city string
	var max int64
	for _, c := range ref.PlacementsByCity.Labels() {
		if n := ref.PlacementsByCity.Get(c); n > max {
			city, max = c, n
		}
	}
	if city == "" {
		t.Fatal("reference run placed nothing")
	}
	return city
}

func TestFaultCrashEvictsAndRecovers(t *testing.T) {
	w := testWorld(t)
	cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 24 * 8
	city := hotCity(t, cfg, w)

	cfg.Faults = &events.FaultScript{Faults: []events.Fault{
		{At: 72 * time.Hour, Kind: events.FaultCrash, Site: city, For: 48 * time.Hour},
	}}
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Faults
	if fs == nil {
		t.Fatal("fault run produced no fault telemetry")
	}
	if fs.Events != 2 {
		t.Errorf("events applied = %d, want 2 (crash + scheduled recover)", fs.Events)
	}
	if fs.ServerCrashes == 0 || fs.ServerRecoveries != fs.ServerCrashes {
		t.Errorf("crashes %d / recoveries %d, want equal and positive", fs.ServerCrashes, fs.ServerRecoveries)
	}
	if fs.Evictions == 0 {
		t.Fatalf("crashing the busiest city (%s) evicted nothing", city)
	}
	if fs.Replaced+fs.Lost != fs.Evictions {
		t.Errorf("evictions %d != replaced %d + lost %d (none left pending at end of run)",
			fs.Evictions, fs.Replaced, fs.Lost)
	}
	if fs.Replaced == 0 {
		t.Error("no evicted app was re-placed through the redeploy path")
	}
	if fs.OutageEpochs != 48 {
		t.Errorf("outage epochs = %d, want 48", fs.OutageEpochs)
	}
	// Evicted apps are re-placed within the same epoch's placement pass
	// when other sites have capacity, so downtime stays bounded by the
	// outage length.
	if fs.DowntimeEpochs > fs.Evictions*48 {
		t.Errorf("downtime %d epochs exceeds eviction count x outage length", fs.DowntimeEpochs)
	}
	// The crashed city hosts nothing while it is down; the run still
	// serves the workload (placements continue).
	if res.Placed == 0 {
		t.Fatal("no placements in fault run")
	}

	// Fault runs are deterministic: an identical replay is byte-identical.
	again, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripClock(res), stripClock(again)) {
		t.Error("fault run replay diverged")
	}
}

func TestFaultZoneOutageUnderTraffic(t *testing.T) {
	w := testWorld(t)
	cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 24 * 6
	city := hotCity(t, cfg, w)
	var zone string
	for _, s := range w.Dep.InRegion(cfg.Region) {
		if s.City == city {
			zone = s.ZoneID
		}
	}
	if zone == "" {
		t.Fatalf("no zone for city %s", city)
	}

	cfg.Traffic = &traffic.Config{Scenario: traffic.Steady, RPS: 700}
	cfg.Faults = &events.FaultScript{Faults: []events.Fault{
		{At: 48 * time.Hour, Kind: events.FaultCrash, Zone: zone, For: 24 * time.Hour},
	}}
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Faults
	if fs.Evictions == 0 {
		t.Fatalf("zone outage of %s (%s) evicted nothing", zone, city)
	}
	if fs.OutageEpochs != 24 {
		t.Errorf("outage epochs = %d, want 24", fs.OutageEpochs)
	}
	if res.Traffic == nil || res.Traffic.Requests == 0 {
		t.Fatal("traffic mode routed nothing")
	}
	if fs.ViolationsDuringOutage < 0 || fs.DroppedDuringOutage < 0 {
		t.Errorf("negative outage service-quality counters: %+v", fs)
	}
}

func TestFaultDegradeEvictsOverflow(t *testing.T) {
	w := testWorld(t)
	cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 24 * 6
	city := hotCity(t, cfg, w)

	// Crush the busiest site to 2% capacity mid-run: hosted apps no
	// longer fit and must be evicted, then restored capacity reopens it.
	cfg.Faults = &events.FaultScript{Faults: []events.Fault{
		{At: 72 * time.Hour, Kind: events.FaultDegrade, Site: city, Factor: 0.02, For: 24 * time.Hour},
	}}
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Faults
	if fs.Events != 2 {
		t.Errorf("events = %d, want degrade + restore", fs.Events)
	}
	if fs.Evictions == 0 {
		t.Error("degrading the busiest site evicted nothing")
	}
	if fs.OutageEpochs != 0 {
		t.Errorf("degradation counted as outage epochs (%d); only crashes are outages", fs.OutageEpochs)
	}
}

func TestFaultScaleOutAddsCapacity(t *testing.T) {
	w := testWorld(t)
	cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 24 * 4
	city := hotCity(t, cfg, w)

	cfg.Faults = &events.FaultScript{Faults: []events.Fault{
		{At: 24 * time.Hour, Kind: events.FaultScaleOut, Site: city, CapacityMilli: 4000, Count: 3},
	}}
	e, err := NewEngine(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	before := len(e.servers)
	for !e.Done() {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(e.servers) - before; got != 3 {
		t.Errorf("scale-out added %d servers, want 3", got)
	}
	if e.ws.NumServers() != len(e.servers) {
		t.Errorf("workspace servers %d != engine servers %d", e.ws.NumServers(), len(e.servers))
	}
	if e.Finish().Faults.ScaleOuts != 3 {
		t.Errorf("ScaleOuts = %d, want 3", e.Finish().Faults.ScaleOuts)
	}
}

func TestFaultForecastErrorOnlySkewsPlacement(t *testing.T) {
	w := testWorld(t)
	cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 24 * 4
	city := hotCity(t, cfg, w)
	var zone string
	for _, s := range w.Dep.InRegion(cfg.Region) {
		if s.City == city {
			zone = s.ZoneID
		}
	}

	base, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &events.FaultScript{Faults: []events.Fault{
		{At: 24 * time.Hour, Kind: events.FaultForecastError, Zone: zone, Factor: 50, For: 48 * time.Hour},
	}}
	spiked, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	// A 50x forecast spike on the favourite zone steers the carbon-aware
	// policy elsewhere while it lasts.
	if spiked.PlacementsByCity.Get(city) >= base.PlacementsByCity.Get(city) {
		t.Errorf("forecast spike on %s did not reduce its placements (%d -> %d)",
			city, base.PlacementsByCity.Get(city), spiked.PlacementsByCity.Get(city))
	}
	if spiked.Faults.Evictions != 0 {
		t.Errorf("forecast error evicted %d apps; it must only skew decisions", spiked.Faults.Evictions)
	}
}

func TestFaultConfigValidation(t *testing.T) {
	w := testWorld(t)
	cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Faults = &events.FaultScript{Faults: []events.Fault{
		{At: time.Hour, Kind: events.FaultCrash, Site: "Atlantis"},
	}}
	if _, err := NewEngine(cfg, w); err == nil {
		t.Error("fault targeting an unknown site accepted")
	}

	cfg.Faults.Faults[0].Site = ""
	cfg.Faults.Faults[0].Zone = "ZZ-NOPE"
	if _, err := NewEngine(cfg, w); err == nil {
		t.Error("fault targeting an unknown zone accepted")
	}

	cfg = shortConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.FixedLoop = true
	cfg.Faults = &events.FaultScript{Faults: []events.Fault{
		{At: time.Hour, Kind: events.FaultCrash, Zone: "DE"},
	}}
	if err := cfg.Validate(); err == nil {
		t.Error("fault script on the fixed loop accepted")
	}
}
