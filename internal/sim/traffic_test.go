package sim

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/carbon"
	"repro/internal/placement"
	"repro/internal/router"
	"repro/internal/traffic"
)

// trafficConfig is a short traffic-driven run at moderate load.
func trafficConfig(region carbon.Region, scn traffic.Scenario, rps float64) Config {
	cfg := shortConfig(region, placement.CarbonAware{})
	cfg.Hours = 24 * 7
	cfg.Traffic = &traffic.Config{Scenario: scn, RPS: rps}
	return cfg
}

func TestTrafficModeBasics(t *testing.T) {
	w := testWorld(t)
	res, err := Run(trafficConfig(carbon.RegionEurope, traffic.Diurnal, 300), w)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Traffic
	if st == nil {
		t.Fatal("traffic mode produced no request telemetry")
	}
	if st.Requests == 0 || st.SLOMet == 0 {
		t.Fatalf("requests=%d slo_met=%d, want traffic served", st.Requests, st.SLOMet)
	}
	if st.SLOMet+st.Spilled > st.Requests {
		t.Errorf("served %d exceeds offered %d", st.SLOMet+st.Spilled, st.Requests)
	}
	if st.Latency.Count() == 0 {
		t.Error("no latency samples recorded")
	}
	if st.CarbonG <= 0 || st.EnergyKWh <= 0 {
		t.Errorf("no per-request attribution: carbon=%v energy=%v", st.CarbonG, st.EnergyKWh)
	}
	// Request energy/carbon must be folded into the run totals.
	if res.CarbonG < st.CarbonG || res.EnergyKWh < st.EnergyKWh {
		t.Errorf("run totals (%.2f g, %.4f kWh) below traffic totals (%.2f g, %.4f kWh)",
			res.CarbonG, res.EnergyKWh, st.CarbonG, st.EnergyKWh)
	}
	if len(st.ByReplica.Labels()) == 0 {
		t.Error("no per-replica request counts")
	}
}

func TestClassicModeHasNoTrafficTelemetry(t *testing.T) {
	w := testWorld(t)
	cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 48
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traffic != nil {
		t.Error("classic epoch mode grew traffic telemetry")
	}
}

func TestTrafficOverloadSignals(t *testing.T) {
	w := testWorld(t)
	// Demand far beyond the replicas' provisioned capacity: the first
	// hours have almost no live apps, so drops and overload slices are
	// guaranteed, and spill-over engages once replicas exist.
	cfg := trafficConfig(carbon.RegionEurope, traffic.FlashCrowd, 5000)
	cfg.Hours = 24 * 3
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Traffic
	if st.Dropped == 0 || st.OverloadSlices == 0 {
		t.Errorf("overload not signalled: dropped=%d overload_slices=%d", st.Dropped, st.OverloadSlices)
	}
	if st.SLOAttainment() >= 1 {
		t.Error("saturated run reports perfect SLO attainment")
	}
}

func TestTrafficScenarioChangesOutcome(t *testing.T) {
	w := testWorld(t)
	diurnal, err := Run(trafficConfig(carbon.RegionEurope, traffic.Diurnal, 300), w)
	if err != nil {
		t.Fatal(err)
	}
	flash, err := Run(trafficConfig(carbon.RegionEurope, traffic.FlashCrowd, 300), w)
	if err != nil {
		t.Fatal(err)
	}
	// The flash crowd is the diurnal shape plus bursts: it must offer
	// more requests and degrade service quality per offered request.
	if flash.Traffic.Requests <= diurnal.Traffic.Requests {
		t.Errorf("flash crowd offered %d requests, diurnal %d; bursts should add demand",
			flash.Traffic.Requests, diurnal.Traffic.Requests)
	}
	degraded := func(st *router.Stats) float64 {
		return float64(st.Spilled+st.Dropped) / float64(st.Requests)
	}
	if degraded(flash.Traffic) <= degraded(diurnal.Traffic) {
		t.Errorf("flash crowd degradation %.4f not above diurnal %.4f",
			degraded(flash.Traffic), degraded(diurnal.Traffic))
	}
}

func TestTrafficSLOCoversSlowestDevice(t *testing.T) {
	// On a heterogeneous pool the routing SLO must cover the slowest
	// (model, device) service time, not just the first device's, so
	// slow-device replicas are not misclassified as SLO-violating.
	w := testWorld(t)
	cfg := trafficConfig(carbon.RegionEurope, traffic.Steady, 100)
	cfg.Devices = []string{"GTX 1080", "Orin Nano"} // 3.8 ms vs 14 ms ResNet50
	e, err := NewEngine(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.RTTLimitMs + 14; e.sloMs != want {
		t.Errorf("traffic SLO %.1f ms, want %.1f (RTT limit + slowest service time)", e.sloMs, want)
	}
}

func TestTrafficModeCollectsLoadCI(t *testing.T) {
	// CollectLoadCI keeps its per-app-hour sampling semantics in the
	// traffic-driven mode.
	w := testWorld(t)
	cfg := trafficConfig(carbon.RegionEurope, traffic.Steady, 100)
	cfg.Hours = 48
	cfg.CollectLoadCI = true
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LoadCI) == 0 {
		t.Fatal("traffic mode dropped LoadCI samples")
	}
}

func TestTrafficReplayDeterministicParallel(t *testing.T) {
	// Serial and concurrent traffic-driven runs over one shared world
	// must be bit-identical (run under -race in CI: this is also the
	// world-immutability check for the traffic path).
	w := testWorld(t)
	var configs []Config
	for _, region := range []carbon.Region{carbon.RegionUS, carbon.RegionEurope} {
		for _, scn := range []traffic.Scenario{traffic.Steady, traffic.Diurnal, traffic.FlashCrowd} {
			cfg := trafficConfig(region, scn, 400)
			cfg.Hours = 24 * 4
			configs = append(configs, cfg)
		}
	}
	serial := make([]*Result, len(configs))
	for i, cfg := range configs {
		r, err := Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = r
	}
	parallel := make([]*Result, len(configs))
	errs := make([]error, len(configs))
	var wg sync.WaitGroup
	for i, cfg := range configs {
		wg.Add(1)
		go func(i int, cfg Config) {
			defer wg.Done()
			parallel[i], errs[i] = Run(cfg, w)
		}(i, cfg)
	}
	wg.Wait()
	for i := range configs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(stripClock(serial[i]), stripClock(parallel[i])) {
			t.Errorf("config %d: parallel traffic replay diverged from serial", i)
		}
	}
}
