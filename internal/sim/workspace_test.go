package sim

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/carbon"
	"repro/internal/energy"
	"repro/internal/placement"
)

// runEngine executes a config to completion on a fresh engine, optionally
// forcing the legacy dense-rebuild placement path.
func runEngine(t *testing.T, cfg Config, w *World, rebuild bool) *Result {
	t.Helper()
	e, err := NewEngine(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	e.rebuild = rebuild
	for !e.Done() {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return e.Finish()
}

// TestEngineWorkspaceMatchesRebuild is the issue's equivalence property
// at full-simulation scope: for every policy, N epochs of
// workspace-incremental placement produce a Result byte-identical to the
// from-scratch dense-rebuild path. The two engines of each pair run
// concurrently over the shared World, so the -race matrix also exercises
// workspace construction against concurrent world readers.
func TestEngineWorkspaceMatchesRebuild(t *testing.T) {
	w := testWorld(t)
	policies := []placement.Policy{
		placement.CarbonAware{},
		placement.LatencyAware{},
		placement.EnergyAware{},
		placement.IntensityAware{},
	}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			t.Parallel()
			cfg := shortConfig(carbon.RegionEurope, pol)
			cfg.Hours = 24 * 7
			var wg sync.WaitGroup
			results := make([]*Result, 2)
			for k, rebuild := range []bool{false, true} {
				wg.Add(1)
				go func(k int, rebuild bool) {
					defer wg.Done()
					results[k] = runEngine(t, cfg, w, rebuild)
				}(k, rebuild)
			}
			wg.Wait()
			if !reflect.DeepEqual(stripClock(results[0]), stripClock(results[1])) {
				t.Errorf("workspace result diverged from rebuild:\nws:      %+v\nrebuild: %+v",
					results[0], results[1])
			}
			if results[0].Placed == 0 {
				t.Error("no apps placed; equivalence vacuous")
			}
		})
	}
}

// TestEngineWorkspaceMatchesRebuildStressShapes covers the engine
// configurations that stress different workspace code paths: power
// management (activation term, departures powering servers off),
// heterogeneous device pools (per-device class cells), batching, and the
// periodic-redeploy path that re-places every live app.
func TestEngineWorkspaceMatchesRebuildStressShapes(t *testing.T) {
	w := testWorld(t)
	shapes := map[string]func(*Config){
		"power-managed": func(cfg *Config) {
			cfg.ServersAlwaysOn = false
			cfg.ArrivalsPerHour = 2
		},
		"hetero-devices": func(cfg *Config) {
			cfg.Devices = []string{energy.OrinNano.Name, energy.A2.Name, energy.GTX1080.Name}
			cfg.Models = []string{energy.ModelEfficientNetB0, energy.ModelResNet50, energy.ModelYOLOv4}
		},
		"batched-3h": func(cfg *Config) {
			cfg.BatchHours = 3
		},
		"redeploy-12h": func(cfg *Config) {
			cfg.AppLifetimeHours = 24 * 7
			cfg.RedeployEveryHours = 12
			cfg.MigrationDataMB = 500
			cfg.MigrationJPerMB = 0.2
		},
	}
	for name, shape := range shapes {
		shape := shape
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
			cfg.Hours = 24 * 5
			shape(&cfg)
			ws := runEngine(t, cfg, w, false)
			rb := runEngine(t, cfg, w, true)
			if !reflect.DeepEqual(stripClock(ws), stripClock(rb)) {
				t.Errorf("workspace result diverged from rebuild:\nws:      %+v\nrebuild: %+v", ws, rb)
			}
		})
	}
}

// TestEngineWarmRedeploy exercises the opt-in warm-started redeploy: the
// run completes, places the same number of apps as the cold redeploy, and
// keeps the result feasible-by-construction (Step would error otherwise).
func TestEngineWarmRedeploy(t *testing.T) {
	w := testWorld(t)
	cfg := shortConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 24 * 5
	cfg.AppLifetimeHours = 24 * 7
	cfg.RedeployEveryHours = 12
	cold := runEngine(t, cfg, w, false)
	cfg.WarmRedeploy = true
	warm := runEngine(t, cfg, w, false)
	if warm.Placed != cold.Placed || warm.Unplaced != cold.Unplaced {
		t.Errorf("warm redeploy placed %d/%d, cold %d/%d",
			warm.Placed, warm.Unplaced, cold.Placed, cold.Unplaced)
	}
	if warm.Batches != cold.Batches {
		t.Errorf("warm redeploy ran %d batches, cold %d", warm.Batches, cold.Batches)
	}
	if warm.CarbonG <= 0 {
		t.Error("warm redeploy accrued no carbon")
	}
}
