package sweep

import (
	"encoding/json"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/sim"
)

// Envelope kinds used in sweep journals.
const (
	kindGrid  = "sweep-grid"
	kindPoint = "sweep-point"
)

// gridSig is the journal's header payload: the declared grid, point by
// point, so a journal is only ever resumed against the grid that wrote
// it. Config signatures catch the subtle mismatch (same keys, different
// parameters) that would silently stitch foreign results.
type gridSig struct {
	Keys       []string `json:"keys"`
	ConfigSigs []string `json:"config_sigs"`
}

// signature builds the grid's journal header.
func (g *Grid) signature() gridSig {
	sig := gridSig{
		Keys:       make([]string, len(g.Points)),
		ConfigSigs: make([]string, len(g.Points)),
	}
	for i, p := range g.Points {
		sig.Keys[i] = p.Key
		sig.ConfigSigs[i] = sim.ConfigSig(p.Config)
	}
	return sig
}

// openJournal opens the grid's resume journal, validates its header
// against the declared grid (writing the header into a fresh journal),
// and returns the completed points' results keyed by grid key.
func (g *Grid) openJournal() (*checkpoint.Journal, map[string]*sim.Result, error) {
	seen := make(map[string]bool, len(g.Points))
	for _, p := range g.Points {
		if seen[p.Key] {
			return nil, nil, fmt.Errorf("sweep: journaled grids need unique point keys (duplicate %q)", p.Key)
		}
		seen[p.Key] = true
	}
	j, entries, err := checkpoint.OpenJournal(g.Journal)
	if err != nil {
		return nil, nil, err
	}
	sig := g.signature()
	if len(entries) == 0 {
		if err := j.Append(kindGrid, "", sig); err != nil {
			j.Close()
			return nil, nil, err
		}
		return j, map[string]*sim.Result{}, nil
	}

	raw, err := entries[0].Open(kindGrid)
	if err != nil {
		j.Close()
		return nil, nil, fmt.Errorf("sweep: journal %s header: %w", g.Journal, err)
	}
	var have gridSig
	if err := json.Unmarshal(raw, &have); err != nil {
		j.Close()
		return nil, nil, fmt.Errorf("sweep: journal %s header: %w", g.Journal, err)
	}
	if len(have.Keys) != len(sig.Keys) {
		j.Close()
		return nil, nil, fmt.Errorf("sweep: journal %s was written for a %d-point grid, this grid has %d", g.Journal, len(have.Keys), len(sig.Keys))
	}
	for i := range sig.Keys {
		if have.Keys[i] != sig.Keys[i] || have.ConfigSigs[i] != sig.ConfigSigs[i] {
			j.Close()
			return nil, nil, fmt.Errorf("sweep: journal %s diverges from this grid at point %d (%q): refusing to stitch foreign results", g.Journal, i, sig.Keys[i])
		}
	}

	done := make(map[string]*sim.Result, len(entries)-1)
	for _, e := range entries[1:] {
		raw, err := e.Open(kindPoint)
		if err != nil {
			j.Close()
			return nil, nil, fmt.Errorf("sweep: journal %s entry %q: %w", g.Journal, e.Key, err)
		}
		var st sim.ResultState
		if err := json.Unmarshal(raw, &st); err != nil {
			j.Close()
			return nil, nil, fmt.Errorf("sweep: journal %s entry %q: %w", g.Journal, e.Key, err)
		}
		if !seen[e.Key] {
			j.Close()
			return nil, nil, fmt.Errorf("sweep: journal %s holds result for unknown point %q", g.Journal, e.Key)
		}
		res, err := st.Restore()
		if err != nil {
			j.Close()
			return nil, nil, fmt.Errorf("sweep: journal %s entry %q: %w", g.Journal, e.Key, err)
		}
		done[e.Key] = res
	}
	return j, done, nil
}

// runJournaled executes the grid with the resume journal at g.Journal:
// points the journal already records are returned without re-running
// (their observers do not fire again), the rest run on the worker pool
// and are appended as they complete, and the results come back stitched
// in grid order — bit-identical to a never-interrupted Run.
func (g *Grid) runJournaled() ([]*sim.Result, error) {
	j, done, err := g.openJournal()
	if err != nil {
		return nil, err
	}
	defer j.Close()
	return Map(g.Parallel, len(g.Points), func(i int) (*sim.Result, error) {
		p := g.Points[i]
		if res, ok := done[p.Key]; ok {
			return res, nil
		}
		res, err := g.runPoint(i)
		if err != nil {
			return nil, err
		}
		if err := j.Append(kindPoint, p.Key, res.State()); err != nil {
			return nil, fmt.Errorf("sweep: journaling point %q: %w", p.Key, err)
		}
		return res, nil
	})
}
