package sweep

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/sim"
)

// encode renders a result's comparable bytes (wall-clock stripped).
func encode(t *testing.T, r *sim.Result) []byte {
	t.Helper()
	st := r.State()
	st.SolveTimeNs = 0
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestJournalResumeBitIdentical(t *testing.T) {
	w := testWorld(t)
	want, err := testGrid(w, 4).Run()
	if err != nil {
		t.Fatal(err)
	}

	// A fresh journaled run matches the plain run bit for bit.
	full := testGrid(w, 4)
	full.Journal = filepath.Join(t.TempDir(), "full.journal")
	got, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(encode(t, got[i]), encode(t, want[i])) {
			t.Fatalf("journaled point %d diverged from plain run", i)
		}
	}

	// Simulate an interrupted run: a journal holding the grid header and
	// only three completed points (out of order, as a parallel run
	// completes them).
	partialPath := filepath.Join(t.TempDir(), "partial.journal")
	g := testGrid(w, 4)
	j, _, err := checkpoint.OpenJournal(partialPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(kindGrid, "", g.signature()); err != nil {
		t.Fatal(err)
	}
	completed := map[int]bool{5: true, 0: true, 3: true}
	for i := range completed {
		if err := j.Append(kindPoint, g.Points[i].Key, want[i].State()); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Resume: only the incomplete points re-run (observers fire only for
	// live runs), and the stitched grid is bit-identical.
	var mu sync.Mutex
	ran := map[int]bool{}
	g.Journal = partialPath
	g.Observe = func(i int, p Point) sim.Observer {
		mu.Lock()
		ran[i] = true
		mu.Unlock()
		return nil
	}
	resumed, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(encode(t, resumed[i]), encode(t, want[i])) {
			t.Errorf("resumed point %d (%s) diverged from uninterrupted run", i, g.Points[i].Key)
		}
		if completed[i] && ran[i] {
			t.Errorf("completed point %d (%s) re-ran on resume", i, g.Points[i].Key)
		}
		if !completed[i] && !ran[i] {
			t.Errorf("incomplete point %d (%s) did not run on resume", i, g.Points[i].Key)
		}
	}

	// A second resume replays everything: no point re-runs.
	g2 := testGrid(w, 4)
	g2.Journal = partialPath
	reran := false
	g2.Observe = func(i int, p Point) sim.Observer { reran = true; return nil }
	again, err := g2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if reran {
		t.Error("fully-journaled grid re-ran points")
	}
	for i := range want {
		if !bytes.Equal(encode(t, again[i]), encode(t, want[i])) {
			t.Errorf("replayed point %d diverged", i)
		}
	}
}

func TestJournalRejectsForeignGrid(t *testing.T) {
	w := testWorld(t)
	path := filepath.Join(t.TempDir(), "grid.journal")
	g := testGrid(w, 2)
	g.Journal = path
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}

	// Same keys, different config: the signature must catch it.
	other := testGrid(w, 2)
	other.Journal = path
	other.Points[2].Config.ArrivalsPerHour++
	if _, err := other.Run(); err == nil {
		t.Error("journal accepted a grid with a changed point config")
	}

	// Different shape.
	smaller := testGrid(w, 2)
	smaller.Journal = path
	smaller.Points = smaller.Points[:3]
	if _, err := smaller.Run(); err == nil {
		t.Error("journal accepted a differently-shaped grid")
	}
}

func TestJournalRequiresUniqueKeys(t *testing.T) {
	w := testWorld(t)
	g := testGrid(w, 1)
	g.Points = append(g.Points, g.Points[0])
	g.Journal = filepath.Join(t.TempDir(), "dup.journal")
	if _, err := g.Run(); err == nil {
		t.Error("journaled run accepted duplicate point keys")
	}
}
