// Package sweep runs declared grids of simulations (and other indexed
// workloads) on a bounded worker pool. Experiments declare the full grid
// up front — every (region x policy x scenario) point — and the runner
// executes the points concurrently against one shared immutable
// sim.World. Each point owns its RNG (seeded from its config), so results
// are bit-identical regardless of worker count, and they are returned in
// grid order.
package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
)

// DefaultParallel is the worker count used when a grid or Map call does
// not specify one.
func DefaultParallel() int { return runtime.GOMAXPROCS(0) }

// Map runs fn(0..n-1) on a pool of parallel workers and returns the
// results in index order. parallel <= 0 uses DefaultParallel. The first
// error encountered (by lowest index) is returned; later indices may or
// may not have run. fn must be safe for concurrent invocation across
// distinct indices.
func Map[T any](parallel, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if parallel <= 0 {
		parallel = DefaultParallel()
	}
	if parallel > n {
		parallel = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	if parallel == 1 {
		// Serial fast path: run in order, stop at the first error.
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		mu   sync.Mutex
		next int
		wg   sync.WaitGroup
	)
	failed := false
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if failed || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				v, err := fn(i)

				mu.Lock()
				if err != nil {
					errs[i] = err
					failed = true
				} else {
					out[i] = v
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Point is one cell of a simulation grid: a config plus a label for
// rendering and error attribution.
type Point struct {
	// Key identifies the point (e.g. "US/CarbonEdge/limit=10").
	Key string
	// Config is the simulation to run. Each point's Seed drives its own
	// RNG, so per-point determinism is independent of worker count.
	Config sim.Config
}

// Grid declares a sweep of simulation runs against one shared world.
type Grid struct {
	// World is the shared immutable dataset; it is never mutated by runs.
	World *sim.World
	// Points is the declared grid, in the order results are returned.
	Points []Point
	// Parallel is the worker-pool size (<= 0 = DefaultParallel).
	Parallel int
	// Observe, when set, is called once per point to build that run's
	// per-epoch observer (nil return = no tap). It runs on the worker
	// goroutine, so the observer only needs to be safe with respect to
	// its own point.
	Observe func(i int, p Point) sim.Observer
	// Journal, when set, is the path of the grid's resume journal:
	// completed points are appended as they finish, and a re-run against
	// an existing journal skips them, re-running only the incomplete
	// points and stitching results back in grid order — bit-identical to
	// an uninterrupted run. The journal header pins the declared grid
	// (keys and config signatures); a journal written for a different
	// grid is rejected. Journaled grids require unique point keys.
	// Observers do not fire for points replayed from the journal.
	Journal string
	// Trace, when set, aggregates every executed point's per-phase
	// timings into one tracer (build it with sim.NewPhaseTracer). Points
	// that do not already opt into observability are traced with the
	// flight recorder off; points replayed from a journal contribute
	// nothing (they did not run). Merging is atomic, so one tracer may be
	// shared across grids and workers.
	Trace *obs.Tracer
}

// Add appends a point to the grid.
func (g *Grid) Add(key string, cfg sim.Config) {
	g.Points = append(g.Points, Point{Key: key, Config: cfg})
}

// runPoint executes one grid point to completion.
func (g *Grid) runPoint(i int) (*sim.Result, error) {
	p := g.Points[i]
	if g.Trace != nil && p.Config.Obs == nil && !p.Config.FixedLoop {
		// Trace this point for the grid aggregate: timings only, no
		// per-point flight recorder.
		p.Config.Obs = &obs.Config{FlightRecorderEvents: -1}
	}
	e, err := sim.NewEngine(p.Config, g.World)
	if err != nil {
		return nil, fmt.Errorf("sweep: point %q: %w", p.Key, err)
	}
	if g.Observe != nil {
		if o := g.Observe(i, p); o != nil {
			e.AddObserver(o)
		}
	}
	for !e.Done() {
		if err := e.Step(); err != nil {
			return nil, fmt.Errorf("sweep: point %q: %w", p.Key, err)
		}
	}
	res := e.Finish()
	if g.Trace != nil && e.Tracer() != nil {
		if err := g.Trace.Merge(e.Tracer()); err != nil {
			return nil, fmt.Errorf("sweep: point %q: %w", p.Key, err)
		}
	}
	return res, nil
}

// Run executes every point and returns the results in grid order. With
// Journal set, completed points recorded there are replayed instead of
// re-run (see the field doc).
func (g *Grid) Run() ([]*sim.Result, error) {
	if g.Journal != "" {
		return g.runJournaled()
	}
	return Map(g.Parallel, len(g.Points), g.runPoint)
}

// RunMap executes every point and returns the results keyed by Point.Key.
// Keys must be unique; duplicates are rejected before any simulation runs.
func (g *Grid) RunMap() (map[string]*sim.Result, error) {
	seen := make(map[string]bool, len(g.Points))
	for _, p := range g.Points {
		if seen[p.Key] {
			return nil, fmt.Errorf("sweep: duplicate point key %q", p.Key)
		}
		seen[p.Key] = true
	}
	res, err := g.Run()
	if err != nil {
		return nil, err
	}
	out := make(map[string]*sim.Result, len(res))
	for i, r := range res {
		out[g.Points[i].Key] = r
	}
	return out, nil
}
