package sweep

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/carbon"
	"repro/internal/placement"
	"repro/internal/sim"
)

func TestMapOrderAndValues(t *testing.T) {
	for _, parallel := range []int{0, 1, 2, 7, 100} {
		out, err := Map(parallel, 25, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 25 {
			t.Fatalf("parallel=%d: %d results", parallel, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Errorf("parallel=%d: out[%d] = %d, want %d", parallel, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map[int](4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Errorf("empty map = %v, %v", out, err)
	}
}

func TestMapError(t *testing.T) {
	wantErr := fmt.Errorf("boom at 3")
	for _, parallel := range []int{1, 4} {
		_, err := Map(parallel, 10, func(i int) (int, error) {
			if i == 3 {
				return 0, wantErr
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("parallel=%d: error swallowed", parallel)
		}
	}
}

func TestMapStopsSchedulingAfterError(t *testing.T) {
	// With a single worker, nothing past the failing index may run.
	var ran atomic.Int64
	_, err := Map(1, 100, func(i int) (int, error) {
		ran.Add(1)
		if i == 5 {
			return 0, fmt.Errorf("stop")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if n := ran.Load(); n > 6 {
		t.Errorf("%d calls ran after the failure at index 5", n)
	}
}

var (
	worldOnce sync.Once
	world     *sim.World
	worldErr  error
)

func testWorld(t *testing.T) *sim.World {
	t.Helper()
	worldOnce.Do(func() { world, worldErr = sim.NewWorld(42) })
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return world
}

// testGrid declares a small mixed grid: two regions, two policies, two
// seeds — eight runs against one shared world.
func testGrid(w *sim.World, parallel int) *Grid {
	g := &Grid{World: w, Parallel: parallel}
	for _, region := range []carbon.Region{carbon.RegionUS, carbon.RegionEurope} {
		for _, pol := range []placement.Policy{placement.CarbonAware{}, placement.LatencyAware{}} {
			for _, seed := range []int64{1, 7} {
				cfg := sim.DefaultConfig(region, pol)
				cfg.Hours = 24 * 5
				cfg.Seed = seed
				cfg.ArrivalsPerHour = 3
				g.Add(fmt.Sprintf("%s/%s/seed=%d", region, pol.Name(), seed), cfg)
			}
		}
	}
	return g
}

// normalize strips wall-clock telemetry, which legitimately varies
// between executions; everything else must be bit-identical.
func normalize(rs []*sim.Result) []*sim.Result {
	out := make([]*sim.Result, len(rs))
	for i, r := range rs {
		c := *r
		c.SolveTime = 0
		out[i] = &c
	}
	return out
}

func TestGridDeterministicAcrossParallelism(t *testing.T) {
	// The same declared grid must produce identical results (modulo
	// solver wall-clock) regardless of worker count: each run owns its
	// RNG and the world is immutable. Run under -race this also
	// exercises concurrent engines on one shared World.
	w := testWorld(t)
	serial, err := testGrid(w, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{2, 4} {
		par, err := testGrid(w, parallel).Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("parallel=%d: %d results, want %d", parallel, len(par), len(serial))
		}
		ns, np := normalize(serial), normalize(par)
		for i := range ns {
			if !reflect.DeepEqual(ns[i], np[i]) {
				t.Errorf("parallel=%d: point %d diverged from serial run:\nserial:   %+v\nparallel: %+v",
					parallel, i, ns[i], np[i])
			}
		}
	}
}

func TestGridRunMap(t *testing.T) {
	w := testWorld(t)
	g := &Grid{World: w, Parallel: 2}
	cfg := sim.DefaultConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 24 * 2
	g.Add("a", cfg)
	cfg.Seed = 7
	g.Add("b", cfg)
	m, err := g.RunMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m["a"] == nil || m["b"] == nil {
		t.Fatalf("RunMap = %v", m)
	}
	if m["a"].Placed == 0 && m["b"].Placed == 0 {
		t.Error("nothing placed in either run")
	}
}

func TestGridRunMapDuplicateKey(t *testing.T) {
	w := testWorld(t)
	g := &Grid{World: w, Parallel: 1}
	cfg := sim.DefaultConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 24
	g.Add("dup", cfg)
	g.Add("dup", cfg)
	if _, err := g.RunMap(); err == nil {
		t.Error("duplicate key accepted")
	}
}

func TestGridObserverPerPoint(t *testing.T) {
	// Each point gets its own observer, built on the worker goroutine,
	// firing once per epoch.
	w := testWorld(t)
	g := &Grid{World: w, Parallel: 2}
	cfg := sim.DefaultConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 24 * 2
	g.Add("a", cfg)
	g.Add("b", cfg)
	epochs := make([]atomic.Int64, 2)
	g.Observe = func(i int, p Point) sim.Observer {
		n := &epochs[i]
		return sim.ObserverFunc(func(epoch int, _ time.Time, _ *sim.Result) {
			n.Add(1)
		})
	}
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range epochs {
		if got := epochs[i].Load(); got != int64(cfg.Hours) {
			t.Errorf("point %d observer fired %d times, want %d", i, got, cfg.Hours)
		}
	}
}

func TestGridTraceAggregates(t *testing.T) {
	// With Trace set, every point runs traced and the per-point tracers
	// merge into the shared aggregate: phase call counts sum across the
	// grid. Results must stay identical to an untraced run.
	w := testWorld(t)
	cfg := sim.DefaultConfig(carbon.RegionEurope, placement.CarbonAware{})
	cfg.Hours = 24 * 2

	plain := &Grid{World: w, Parallel: 2}
	plain.Add("a", cfg)
	plain.Add("b", cfg)
	want, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}

	traced := &Grid{World: w, Parallel: 2, Trace: sim.NewPhaseTracer()}
	traced.Add("a", cfg)
	traced.Add("b", cfg)
	got, err := traced.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].CarbonG != got[i].CarbonG || want[i].Placed != got[i].Placed {
			t.Errorf("point %d diverged under tracing", i)
		}
	}
	for _, ps := range traced.Trace.Report() {
		switch ps.Name {
		case "carbon-tick", "departures", "arrivals", "placement", "accrual":
			if ps.Calls != int64(2*cfg.Hours) {
				t.Errorf("phase %s aggregated %d calls, want %d", ps.Name, ps.Calls, 2*cfg.Hours)
			}
		}
	}
}
