package testbed

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/carbon"
	"repro/internal/latency"
	"repro/internal/placement"
	"repro/internal/traffic"
)

// newAPIServer assembles the same stack cmd/carbonedge serves: a Florida
// testbed behind the orchestrator's HTTP API.
func newAPIServer(t *testing.T) (*Testbed, *httptest.Server) {
	t.Helper()
	zones, err := carbon.DefaultRegistry(42)
	if err != nil {
		t.Fatal(err)
	}
	cities, err := latency.DefaultCityRegistry()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := New(Config{
		Region: Florida(),
		Zones:  zones,
		Traces: carbon.NewGenerator(42).GenerateTraces(zones),
		Cities: cities,
		Policy: placement.CarbonAware{},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(tb.Orch.API())
	t.Cleanup(srv.Close)
	return tb, srv
}

func decode(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", resp.Request.URL.Path, err)
	}
}

func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestAPIDeployPlaceMetricsTrafficRoundTrip(t *testing.T) {
	tb, srv := newAPIServer(t)

	// Traffic endpoint before attachment: 404.
	resp := get(t, srv.URL+"/api/v1/traffic")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("traffic before attach: status %d, want 404", resp.StatusCode)
	}

	// Submit two deployments.
	for _, city := range []string{"Miami", "Tampa"} {
		body := fmt.Sprintf(`{"name":"app-%s","model":"ResNet50","source":"%s","slo_ms":20,"rate_per_sec":10}`, city, city)
		resp := post(t, srv.URL+"/api/v1/deployments", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("deploy %s: status %d, want 202", city, resp.StatusCode)
		}
	}
	// Duplicate and malformed submissions are rejected.
	resp = post(t, srv.URL+"/api/v1/deployments", `{"name":"app-Miami","model":"ResNet50","source":"Miami","slo_ms":20,"rate_per_sec":10}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate deploy: status %d, want 409", resp.StatusCode)
	}
	resp = post(t, srv.URL+"/api/v1/deployments", `{"name":"bad","model":"NoSuchModel","source":"Miami","slo_ms":20,"rate_per_sec":10}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad model: status %d, want 400", resp.StatusCode)
	}

	// No solver stats before the first batch.
	resp = get(t, srv.URL+"/api/v1/placement")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("placement before batch: status %d, want 404", resp.StatusCode)
	}

	// Run the placement batch.
	var placed struct {
		Placed   []json.RawMessage `json:"placed"`
		Rejected []string          `json:"rejected"`
	}
	resp = post(t, srv.URL+"/api/v1/place", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("place: status %d", resp.StatusCode)
	}
	decode(t, resp, &placed)
	if len(placed.Placed) != 2 || len(placed.Rejected) != 0 {
		t.Fatalf("placed %d rejected %v, want 2/none", len(placed.Placed), placed.Rejected)
	}

	// Live solver stats from the orchestrator's workspace.
	var pstats struct {
		Backend        string  `json:"backend"`
		Batches        int     `json:"batches"`
		Apps           int     `json:"apps"`
		Servers        int     `json:"servers"`
		Placed         int     `json:"placed"`
		CandidatesMin  int     `json:"candidates_min"`
		CandidatesMean float64 `json:"candidates_mean"`
		CandidatesMax  int     `json:"candidates_max"`
	}
	resp = get(t, srv.URL+"/api/v1/placement")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("placement: status %d", resp.StatusCode)
	}
	decode(t, resp, &pstats)
	if pstats.Backend == "" || pstats.Batches != 1 || pstats.Apps != 2 || pstats.Placed != 2 {
		t.Errorf("placement stats incomplete: %+v", pstats)
	}
	if pstats.CandidatesMin <= 0 || pstats.CandidatesMax > pstats.Servers ||
		pstats.CandidatesMean < float64(pstats.CandidatesMin) {
		t.Errorf("candidate stats inconsistent: %+v", pstats)
	}

	// Fetch one deployment.
	resp = get(t, srv.URL+"/api/v1/deployments/app-Miami")
	var dep struct {
		ServerID string `json:"server_id"`
		ZoneID   string `json:"zone_id"`
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get deployment: status %d", resp.StatusCode)
	}
	decode(t, resp, &dep)
	if dep.ServerID == "" || dep.ZoneID == "" {
		t.Errorf("deployment body incomplete: %+v", dep)
	}

	// Attach traffic and advance the emulated clock a day.
	if err := tb.AttachTraffic(traffic.Config{Seed: 1, Scenario: traffic.Diurnal, RPS: 15}, 40); err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 24; h++ {
		if err := tb.Orch.Tick(time.Hour); err != nil {
			t.Fatal(err)
		}
	}

	// Metrics reflect the day of accrual.
	var met struct {
		CarbonTotalG float64 `json:"carbon_total_g"`
		EnergyKWh    float64 `json:"energy_kwh"`
		Deployments  int     `json:"deployments"`
	}
	resp = get(t, srv.URL+"/api/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	decode(t, resp, &met)
	if met.Deployments != 2 || met.CarbonTotalG <= 0 || met.EnergyKWh <= 0 {
		t.Errorf("metrics incomplete: %+v", met)
	}

	// Traffic stats: totals plus one row per deployment.
	var tr struct {
		Totals struct {
			Requests int64   `json:"requests"`
			SLOPct   float64 `json:"slo_attainment_pct"`
			P50Ms    float64 `json:"p50_ms"`
			P99Ms    float64 `json:"p99_ms"`
			CarbonG  float64 `json:"carbon_g"`
		} `json:"totals"`
		Deployments []struct {
			ID       string  `json:"id"`
			Requests int64   `json:"requests"`
			SLOPct   float64 `json:"slo_attainment_pct"`
			P50Ms    float64 `json:"p50_ms"`
		} `json:"deployments"`
	}
	resp = get(t, srv.URL+"/api/v1/traffic")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traffic: status %d", resp.StatusCode)
	}
	decode(t, resp, &tr)
	if tr.Totals.Requests == 0 {
		t.Fatal("no requests routed after a day of ticks")
	}
	if tr.Totals.SLOPct <= 0 || tr.Totals.P50Ms <= 0 || tr.Totals.CarbonG <= 0 {
		t.Errorf("traffic totals incomplete: %+v", tr.Totals)
	}
	if len(tr.Deployments) != 2 {
		t.Fatalf("per-deployment rows = %d, want 2", len(tr.Deployments))
	}
	for _, row := range tr.Deployments {
		if row.Requests == 0 || row.P50Ms <= 0 {
			t.Errorf("deployment %s has empty stats: %+v", row.ID, row)
		}
	}

	// Undeploy and verify it is gone.
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/api/v1/deployments/app-Tampa", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("undeploy: status %d, want 204", resp.StatusCode)
	}
	resp = get(t, srv.URL+"/api/v1/deployments/app-Tampa")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted deployment still served: status %d", resp.StatusCode)
	}
}

func TestTrafficTickWindowScaling(t *testing.T) {
	// One 2-hour tick must route exactly the demand of two 1-hour ticks:
	// the router iterates every hourly slice the window overlaps instead
	// of scaling a single slice.
	tcfg := traffic.Config{Seed: 9, Scenario: traffic.Diurnal, RPS: 50}
	tbA, _ := newAPIServer(t)
	if err := tbA.AttachTraffic(tcfg, 40); err != nil {
		t.Fatal(err)
	}
	if err := tbA.Orch.Tick(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	tbB, _ := newAPIServer(t)
	if err := tbB.AttachTraffic(tcfg, 40); err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 2; h++ {
		if err := tbB.Orch.Tick(time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	// Sub-hour ticks must partition each hourly slice exactly: four
	// 15-minute ticks over the same first hour as tbB's first 1-hour
	// tick, plus one more hour, again offer identical demand.
	tbC, _ := newAPIServer(t)
	if err := tbC.AttachTraffic(tcfg, 40); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 4; q++ {
		if err := tbC.Orch.Tick(15 * time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbC.Orch.Tick(time.Hour); err != nil {
		t.Fatal(err)
	}
	snapA, _, _, _ := tbA.Orch.TrafficTelemetry()
	snapB, _, _, _ := tbB.Orch.TrafficTelemetry()
	snapC, _, _, _ := tbC.Orch.TrafficTelemetry()
	if snapA.Requests == 0 {
		t.Fatal("no requests routed")
	}
	if snapA.Requests != snapB.Requests {
		t.Errorf("2h tick routed %d requests, two 1h ticks routed %d", snapA.Requests, snapB.Requests)
	}
	if snapC.Requests != snapB.Requests {
		t.Errorf("15-minute ticks routed %d requests, hourly ticks routed %d", snapC.Requests, snapB.Requests)
	}
}

func TestAPIOverloadSignal(t *testing.T) {
	tb, _ := newAPIServer(t)
	// No deployments at all: every routed request drops, and each tick
	// fires the overload handler.
	if err := tb.AttachTraffic(traffic.Config{Seed: 2, Scenario: traffic.Steady, RPS: 100}, 40); err != nil {
		t.Fatal(err)
	}
	var fired int
	var droppedTotal int64
	tb.Orch.SetOverloadHandler(func(now time.Time, dropped int64) {
		fired++
		droppedTotal += dropped
	})
	for h := 0; h < 3; h++ {
		if err := tb.Orch.Tick(time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	if fired != 3 || droppedTotal == 0 {
		t.Errorf("overload handler fired %d times (%d dropped), want 3 with drops", fired, droppedTotal)
	}
	snap, overloadTicks, last, ok := tb.Orch.TrafficTelemetry()
	if !ok {
		t.Fatal("telemetry not attached")
	}
	if overloadTicks != 3 || last.IsZero() {
		t.Errorf("overload_ticks=%d last=%v, want 3 ticks recorded", overloadTicks, last)
	}
	if snap.Dropped != droppedTotal {
		t.Errorf("snapshot dropped %d != handler total %d", snap.Dropped, droppedTotal)
	}
}
