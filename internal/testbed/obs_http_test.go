package testbed

import (
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/traffic"
)

// metricValue extracts one sample's value from a Prometheus exposition.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(series) + " (.*)$")
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("exposition has no series %q:\n%s", series, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("series %q value %q: %v", series, m[1], err)
	}
	return v
}

// TestObsEndpoints drives the full API stack through deploy, traffic,
// and a fault, then scrapes /metrics and /api/v1/obs: the unified
// registry must cover carbon/energy, traffic SLO, placement solver, and
// fault counters, and the obs body must carry the tick-phase breakdown
// plus the recorded fault events.
func TestObsEndpoints(t *testing.T) {
	tb, srv := newAPIServer(t)

	resp := post(t, srv.URL+"/api/v1/deployments",
		`{"name":"app-obs","model":"ResNet50","source":"Miami","slo_ms":20,"rate_per_sec":10}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("deploy: status %d", resp.StatusCode)
	}
	resp = post(t, srv.URL+"/api/v1/place", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("place: status %d", resp.StatusCode)
	}
	if err := tb.AttachTraffic(traffic.Config{Seed: 1, Scenario: traffic.Diurnal, RPS: 15}, 40); err != nil {
		t.Fatal(err)
	}
	resp = post(t, srv.URL+"/api/v1/faults", `{"at":"1h","kind":"crash","site":"Miami","for":"3h"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("inject fault: status %d", resp.StatusCode)
	}
	for h := 0; h < 6; h++ {
		if err := tb.Orch.Tick(time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	// The crash evicted app-obs back into the pending queue; Miami has
	// recovered by now, so a second batch re-places it.
	resp = post(t, srv.URL+"/api/v1/place", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-place: status %d", resp.StatusCode)
	}

	// Prometheus exposition.
	resp = get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	if v := metricValue(t, text, "carbonedge_carbon_grams_total"); v <= 0 {
		t.Errorf("carbon total = %g, want > 0", v)
	}
	if v := metricValue(t, text, "carbonedge_energy_kwh_total"); v <= 0 {
		t.Errorf("energy total = %g, want > 0", v)
	}
	if v := metricValue(t, text, "carbonedge_deployments"); v != 1 {
		t.Errorf("deployments = %g, want 1", v)
	}
	if v := metricValue(t, text, "carbonedge_deploy_batches_total"); v != 2 {
		t.Errorf("batches = %g, want 2", v)
	}
	if v := metricValue(t, text, "carbonedge_pending_recipes"); v != 0 {
		t.Errorf("pending = %g, want 0", v)
	}
	if v := metricValue(t, text, "carbonedge_fault_evictions_total"); v != 1 {
		t.Errorf("evictions = %g, want 1", v)
	}
	if v := metricValue(t, text, "carbonedge_requests_total"); v <= 0 {
		t.Errorf("requests = %g, want > 0", v)
	}
	if v := metricValue(t, text, "carbonedge_request_latency_ms_count"); v <= 0 {
		t.Errorf("latency count = %g, want > 0", v)
	}
	if v := metricValue(t, text, "carbonedge_placement_apps"); v != 1 {
		t.Errorf("placement apps = %g, want 1", v)
	}
	// The crash applied at +1h and its recovery at +4h.
	if v := metricValue(t, text, "carbonedge_faults_applied_total"); v != 2 {
		t.Errorf("faults applied = %g, want 2", v)
	}
	if v := metricValue(t, text, `carbonedge_tick_phase_seconds_total{phase="telemetry"}`); v < 0 {
		t.Errorf("telemetry phase seconds = %g", v)
	}
	if v := metricValue(t, text, `carbonedge_tick_phase_calls_total{phase="telemetry"}`); v != 6 {
		t.Errorf("telemetry phase calls = %g, want 6", v)
	}
	if v := metricValue(t, text, `carbonedge_tick_phase_calls_total{phase="placement"}`); v != 2 {
		t.Errorf("placement phase calls = %g, want 2", v)
	}

	// Phase breakdown + flight recorder.
	var body struct {
		Now    string `json:"now"`
		Phases []struct {
			Name  string `json:"name"`
			Calls int64  `json:"calls"`
		} `json:"phases"`
		RecentEvents []struct {
			Kind string `json:"kind"`
			Seq  uint64 `json:"seq"`
		} `json:"recent_events"`
	}
	resp = get(t, srv.URL+"/api/v1/obs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/v1/obs: status %d", resp.StatusCode)
	}
	decode(t, resp, &body)
	if body.Now == "" || len(body.Phases) != 4 {
		t.Fatalf("obs body incomplete: %+v", body)
	}
	calls := map[string]int64{}
	for _, p := range body.Phases {
		calls[p.Name] = p.Calls
	}
	if calls["telemetry"] != 6 || calls["traffic"] != 6 || calls["placement"] != 2 {
		t.Errorf("phase calls = %v", calls)
	}
	if len(body.RecentEvents) != 2 {
		t.Fatalf("recorded %d events, want 2 (crash + recovery)", len(body.RecentEvents))
	}
	if body.RecentEvents[0].Kind != "crash" || body.RecentEvents[0].Seq != 1 {
		t.Errorf("first recorded event = %+v, want crash seq 1", body.RecentEvents[0])
	}
}
