// Package testbed emulates the paper's mesoscale regional edge testbed
// (§6.1.2): five edge data centers in one mesoscale region (Florida or
// Central Europe), each represented by a server and an associated client,
// with tc-style emulated network latency between sites and a CarbonEdge
// controller placing workloads. It produces the Figure 8-10 measurements:
// per-zone carbon intensity and emissions over a day, end-to-end response
// times, and aggregate emissions/latency per policy.
package testbed

import (
	"fmt"
	"time"

	"repro/internal/carbon"
	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/latency"
	"repro/internal/orchestrator"
	"repro/internal/placement"
	"repro/internal/traffic"
)

// DCSpec describes one testbed data center.
type DCSpec struct {
	City   string
	ZoneID string
}

// Region is a named set of testbed data centers.
type Region struct {
	Name string
	DCs  []DCSpec
	// LatencyModel converts distances to delays for this region.
	LatencyModel latency.Model
}

// Florida returns the paper's Florida testbed region.
func Florida() Region {
	return Region{
		Name: "Florida",
		DCs: []DCSpec{
			{"Tallahassee", "US-FL-TLH"},
			{"Jacksonville", "US-FL-JAX"},
			{"Miami", "US-FL-MIA"},
			{"Orlando", "US-FL-ORL"},
			{"Tampa", "US-FL-TPA"},
		},
		LatencyModel: latency.USModel(),
	}
}

// CentralEU returns the paper's Central Europe testbed region.
func CentralEU() Region {
	return Region{
		Name: "Central EU",
		DCs: []DCSpec{
			{"Bern", "CH-BRN"},
			{"Graz", "AT-GRZ"},
			{"Lyon", "FR-LYO"},
			{"Milan", "IT-MIL"},
			{"Munich", "DE-MUC"},
		},
		LatencyModel: latency.EuropeModel(),
	}
}

// Config assembles a testbed.
type Config struct {
	Region Region
	Zones  *carbon.Registry
	Traces *carbon.TraceSet
	Cities *latency.CityRegistry
	Policy placement.Policy
	// Device equips every testbed server (paper: Dell R630 + NVIDIA A2;
	// the CPU-based Sci app runs on the Xeon host instead).
	Device energy.Device
	// Start is the emulated wall-clock start within the trace year.
	Start time.Time
}

// Testbed is an assembled regional deployment.
type Testbed struct {
	Region  Region
	Orch    *orchestrator.Orchestrator
	Cluster *cluster.Cluster
	Shaper  *latency.Shaper

	cities *latency.CityRegistry
}

// New builds the emulated testbed: one server per DC, pairwise latencies
// loaded into the shaper, and an orchestrator with the given policy.
func New(cfg Config) (*Testbed, error) {
	if len(cfg.Region.DCs) == 0 {
		return nil, fmt.Errorf("testbed: region has no data centers")
	}
	if cfg.Zones == nil || cfg.Traces == nil || cfg.Cities == nil {
		return nil, fmt.Errorf("testbed: zones, traces, and cities are required")
	}
	dev := cfg.Device
	if dev.Name == "" {
		dev = energy.A2
	}

	var dcs []*cluster.DataCenter
	names := make([]string, 0, len(cfg.Region.DCs))
	for _, spec := range cfg.Region.DCs {
		city, ok := cfg.Cities.ByName(spec.City)
		if !ok {
			return nil, fmt.Errorf("testbed: unknown city %q", spec.City)
		}
		if cfg.Zones.ByID(spec.ZoneID) == nil {
			return nil, fmt.Errorf("testbed: unknown zone %q", spec.ZoneID)
		}
		dc := cluster.NewDataCenter("dc-"+spec.City, spec.City, city.Location, spec.ZoneID, spec.City)
		// Each DC hosts one GPU server and one CPU host, mirroring the
		// R630 + A2 testbed machines.
		gpu := cluster.NewServer("srv-"+spec.City+"-gpu", dc.ID, dev,
			cluster.NewResources(1000, 65536, float64(dev.MemMB), 1000))
		cpu := cluster.NewServer("srv-"+spec.City+"-cpu", dc.ID, energy.XeonE5,
			cluster.NewResources(40000, 262144, 0, 1000))
		if err := gpu.SetState(cluster.PoweredOn); err != nil {
			return nil, err
		}
		if err := cpu.SetState(cluster.PoweredOn); err != nil {
			return nil, err
		}
		if err := dc.AddServer(gpu); err != nil {
			return nil, err
		}
		if err := dc.AddServer(cpu); err != nil {
			return nil, err
		}
		dcs = append(dcs, dc)
		names = append(names, spec.City)
	}
	cl, err := cluster.NewCluster(dcs)
	if err != nil {
		return nil, err
	}

	// Load pairwise latencies into the shaper (the tc step).
	shaper := latency.NewShaper()
	shaper.SetScale(0) // measurements use configured delays; no real sleeps
	for i := 0; i < len(cfg.Region.DCs); i++ {
		ci, _ := cfg.Cities.ByName(cfg.Region.DCs[i].City)
		for j := i + 1; j < len(cfg.Region.DCs); j++ {
			cj, _ := cfg.Cities.ByName(cfg.Region.DCs[j].City)
			oneWay := cfg.Region.LatencyModel.OneWayMs(ci.Location, cj.Location)
			shaper.SetDelay(names[i], names[j], time.Duration(oneWay*float64(time.Millisecond)))
		}
	}

	start := cfg.Start
	if start.IsZero() {
		start = cfg.Traces.Start
	}
	orch, err := orchestrator.New(orchestrator.Config{
		Cluster: cl,
		Carbon:  carbon.NewService(cfg.Traces, carbon.SeasonalNaive{Period: 24}),
		Shaper:  shaper,
		Policy:  cfg.Policy,
		Start:   start,
	})
	if err != nil {
		return nil, err
	}
	return &Testbed{Region: cfg.Region, Orch: orch, Cluster: cl, Shaper: shaper, cities: cfg.Cities}, nil
}

// AttachTraffic wires an open-loop request workload into the testbed's
// orchestrator: each regional DC city is a demand source weighted by its
// population, and every tick routes the window's aggregated slice across
// the current deployments against the given end-to-end SLO. Traffic
// starts at the orchestrator's current clock.
func (tb *Testbed) AttachTraffic(cfg traffic.Config, sloMs float64) error {
	sources := make([]traffic.Source, 0, len(tb.Region.DCs))
	for _, spec := range tb.Region.DCs {
		city, ok := tb.cities.ByName(spec.City)
		if !ok {
			return fmt.Errorf("testbed: unknown city %q", spec.City)
		}
		sources = append(sources, traffic.Source{
			City:   spec.City,
			Weight: city.PopulationM,
			Lon:    city.Location.Lon,
		})
	}
	gen, err := traffic.NewGenerator(cfg, tb.Orch.Now(), sources)
	if err != nil {
		return err
	}
	return tb.Orch.AttachTraffic(gen, sloMs)
}

// DayResult is a 24-hour testbed experiment outcome (Figures 8-10).
type DayResult struct {
	// CityOrder preserves the region's DC order.
	CityOrder []string
	// IntensityByCity is each zone's hourly carbon intensity.
	IntensityByCity map[string][]float64
	// EmissionsByApp is each app's hourly operational emissions (g).
	EmissionsByApp map[string][]float64
	// ResponseMsByApp is each app's end-to-end response time: network
	// RTT plus model inference time.
	ResponseMsByApp map[string]float64
	// HostCity maps each app to its chosen hosting city.
	HostCity map[string]string
	// TotalCarbonG sums app emissions over the day.
	TotalCarbonG float64
	// MeanResponseMs averages response time across apps.
	MeanResponseMs float64
}

// RunDay deploys one application per DC (sourced at that DC's city) and
// replays 24 hours, recording the Figure 8-10 measurements.
func (tb *Testbed) RunDay(model string, ratePerSec, sloMs float64) (*DayResult, error) {
	res := &DayResult{
		IntensityByCity: map[string][]float64{},
		EmissionsByApp:  map[string][]float64{},
		ResponseMsByApp: map[string]float64{},
		HostCity:        map[string]string{},
	}
	for _, spec := range tb.Region.DCs {
		res.CityOrder = append(res.CityOrder, spec.City)
		rec := orchestrator.Recipe{
			Name:       "app-" + spec.City,
			Model:      model,
			Source:     spec.City,
			SLOms:      sloMs,
			RatePerSec: ratePerSec,
		}
		if err := tb.Orch.Submit(rec); err != nil {
			return nil, err
		}
	}
	placed, rejected, err := tb.Orch.PlaceBatch()
	if err != nil {
		return nil, err
	}
	if len(rejected) > 0 {
		return nil, fmt.Errorf("testbed: %d apps rejected: %v", len(rejected), rejected)
	}

	prof := map[string]float64{} // app -> inference ms
	for _, dep := range placed {
		srv, _, err := tb.Cluster.FindServer(dep.ServerID)
		if err != nil {
			return nil, err
		}
		p, err := energy.ProfileFor(dep.Recipe.Model, srv.Device.Name)
		if err != nil {
			return nil, err
		}
		prof[dep.Recipe.Name] = p.InferenceMs
		res.HostCity[dep.Recipe.Name] = dep.DCID[len("dc-"):]
		res.ResponseMsByApp[dep.Recipe.Name] = dep.RTTMs + p.InferenceMs
	}

	prevCarbon := map[string]float64{}
	for hour := 0; hour < 24; hour++ {
		// Record zone intensities before advancing.
		for _, spec := range tb.Region.DCs {
			ci, err := tb.Orch.CurrentIntensity(spec.ZoneID)
			if err != nil {
				return nil, err
			}
			res.IntensityByCity[spec.City] = append(res.IntensityByCity[spec.City], ci)
		}
		if err := tb.Orch.Tick(time.Hour); err != nil {
			return nil, err
		}
		for _, dep := range placed {
			total := tb.Orch.AppCarbonG(dep.Recipe.Name)
			res.EmissionsByApp[dep.Recipe.Name] = append(res.EmissionsByApp[dep.Recipe.Name], total-prevCarbon[dep.Recipe.Name])
			prevCarbon[dep.Recipe.Name] = total
		}
	}
	var respSum float64
	for app, total := range prevCarbon {
		res.TotalCarbonG += total
		respSum += res.ResponseMsByApp[app]
	}
	if len(placed) > 0 {
		res.MeanResponseMs = respSum / float64(len(placed))
	}
	return res, nil
}
