package testbed

import (
	"sync"
	"testing"

	"repro/internal/carbon"
	"repro/internal/energy"
	"repro/internal/latency"
	"repro/internal/placement"
)

var (
	setupOnce sync.Once
	zonesReg  *carbon.Registry
	traceSet  *carbon.TraceSet
	cityReg   *latency.CityRegistry
	setupErr  error
)

func setup(t *testing.T) (*carbon.Registry, *carbon.TraceSet, *latency.CityRegistry) {
	t.Helper()
	setupOnce.Do(func() {
		zonesReg, setupErr = carbon.DefaultRegistry(42)
		if setupErr != nil {
			return
		}
		traceSet = carbon.NewGenerator(42).GenerateTraces(zonesReg)
		cityReg, setupErr = latency.DefaultCityRegistry()
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return zonesReg, traceSet, cityReg
}

func newTB(t *testing.T, region Region, pol placement.Policy) *Testbed {
	t.Helper()
	zones, traces, cities := setup(t)
	tb, err := New(Config{
		Region: region, Zones: zones, Traces: traces, Cities: cities, Policy: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestNewValidation(t *testing.T) {
	zones, traces, cities := setup(t)
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	bad := Florida()
	bad.DCs[0].City = "Atlantis"
	if _, err := New(Config{Region: bad, Zones: zones, Traces: traces, Cities: cities}); err == nil {
		t.Error("unknown city accepted")
	}
	bad2 := Florida()
	bad2.DCs[0].ZoneID = "NOPE"
	if _, err := New(Config{Region: bad2, Zones: zones, Traces: traces, Cities: cities}); err == nil {
		t.Error("unknown zone accepted")
	}
}

func TestTestbedTopology(t *testing.T) {
	tb := newTB(t, Florida(), placement.CarbonAware{})
	if got := len(tb.Cluster.DataCenters()); got != 5 {
		t.Errorf("DCs = %d, want 5", got)
	}
	// Each DC has a GPU server and a CPU host (the R630 + A2 pairing).
	if got := len(tb.Cluster.Servers()); got != 10 {
		t.Errorf("servers = %d, want 10", got)
	}
	// Latency between Miami and Tallahassee loaded into the shaper.
	if tb.Shaper.OneWay("Miami", "Tallahassee") <= 0 {
		t.Error("shaper missing Miami-Tallahassee delay")
	}
}

func TestRunDayCarbonEdgeConsolidatesOnGreenest(t *testing.T) {
	// Figure 8c: CarbonEdge places all Florida apps in the greenest zone
	// (Miami in the paper; our calibrated Miami is also the greenest).
	tb := newTB(t, Florida(), placement.CarbonAware{})
	day, err := tb.RunDay(energy.ModelResNet50, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	hostCounts := map[string]int{}
	for _, host := range day.HostCity {
		hostCounts[host]++
	}
	if len(hostCounts) != 1 {
		t.Errorf("CarbonEdge scattered apps across %v, expected consolidation", hostCounts)
	}
	if hostCounts["Miami"] != 5 {
		t.Errorf("hosts = %v, expected all 5 on Miami", hostCounts)
	}
}

func TestRunDayLatencyAwareStaysLocal(t *testing.T) {
	// Figure 8b: latency-aware keeps each app at its source DC, so
	// emissions track each zone's own carbon intensity.
	tb := newTB(t, Florida(), placement.LatencyAware{})
	day, err := tb.RunDay(energy.ModelResNet50, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	for app, host := range day.HostCity {
		want := app[len("app-"):]
		if host != want {
			t.Errorf("%s hosted at %s, want %s", app, host, want)
		}
	}
	// Local placement -> response time = inference only (0 network RTT).
	for app, ms := range day.ResponseMsByApp {
		prof, _ := energy.ProfileFor(energy.ModelResNet50, energy.A2.Name)
		if ms != prof.InferenceMs {
			t.Errorf("%s response %v ms, want pure inference %v", app, ms, prof.InferenceMs)
		}
	}
}

func TestFig10CarbonSavingsAndLatency(t *testing.T) {
	// Figure 10: CarbonEdge cuts emissions vs Latency-aware in both
	// regions (39.4% Florida, 78.7% Central EU) with bounded response-
	// time increases (6.6 ms / 10.5 ms round trip).
	for _, tc := range []struct {
		region     Region
		minSavePct float64
		maxIncrMs  float64
	}{
		{Florida(), 15, 15},
		{CentralEU(), 50, 25},
	} {
		ce, err := newTB(t, tc.region, placement.CarbonAware{}).RunDay(energy.ModelResNet50, 10, 20)
		if err != nil {
			t.Fatal(err)
		}
		la, err := newTB(t, tc.region, placement.LatencyAware{}).RunDay(energy.ModelResNet50, 10, 20)
		if err != nil {
			t.Fatal(err)
		}
		save := (la.TotalCarbonG - ce.TotalCarbonG) / la.TotalCarbonG * 100
		if save < tc.minSavePct {
			t.Errorf("%s: saving %.1f%%, want >= %.0f%%", tc.region.Name, save, tc.minSavePct)
		}
		incr := ce.MeanResponseMs - la.MeanResponseMs
		if incr < 0 || incr > tc.maxIncrMs {
			t.Errorf("%s: response increase %.1f ms outside (0, %.0f]", tc.region.Name, incr, tc.maxIncrMs)
		}
	}
}

func TestCentralEUSavesMoreThanFlorida(t *testing.T) {
	saving := func(region Region) float64 {
		ce, err := newTB(t, region, placement.CarbonAware{}).RunDay(energy.ModelResNet50, 10, 20)
		if err != nil {
			t.Fatal(err)
		}
		la, err := newTB(t, region, placement.LatencyAware{}).RunDay(energy.ModelResNet50, 10, 20)
		if err != nil {
			t.Fatal(err)
		}
		return (la.TotalCarbonG - ce.TotalCarbonG) / la.TotalCarbonG * 100
	}
	fl, eu := saving(Florida()), saving(CentralEU())
	if eu <= fl {
		t.Errorf("Central EU saving %.1f%% <= Florida %.1f%%, paper reports the opposite", eu, fl)
	}
}

func TestCPUWorkloadRunsOnXeon(t *testing.T) {
	// The Sci workload (Figure 10's CPU app) must land on the Xeon
	// hosts, not the GPUs.
	tb := newTB(t, Florida(), placement.CarbonAware{})
	day, err := tb.RunDay(energy.ModelSci, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	for app := range day.HostCity {
		dep := tb.Orch.Deployment(app)
		srv, _, err := tb.Cluster.FindServer(dep.ServerID)
		if err != nil {
			t.Fatal(err)
		}
		if srv.Device.Name != energy.XeonE5.Name {
			t.Errorf("%s on %s, want Xeon host", app, srv.Device.Name)
		}
	}
}

func TestDayResultShapes(t *testing.T) {
	tb := newTB(t, CentralEU(), placement.CarbonAware{})
	day, err := tb.RunDay(energy.ModelResNet50, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(day.CityOrder) != 5 {
		t.Errorf("city order = %v", day.CityOrder)
	}
	for _, city := range day.CityOrder {
		if got := len(day.IntensityByCity[city]); got != 24 {
			t.Errorf("%s intensity series = %d samples, want 24", city, got)
		}
	}
	for app, series := range day.EmissionsByApp {
		if len(series) != 24 {
			t.Errorf("%s emissions = %d samples, want 24", app, len(series))
		}
		var total float64
		for _, v := range series {
			if v < 0 {
				t.Errorf("%s negative hourly emission %v", app, v)
			}
			total += v
		}
		if total <= 0 {
			t.Errorf("%s accrued no emissions", app)
		}
	}
	if day.TotalCarbonG <= 0 {
		t.Error("no total carbon")
	}
}
