// Package timeseries provides the hourly time-series container used for
// carbon-intensity traces, power telemetry, and simulator metrics, together
// with the aggregation and distribution statistics the evaluation section
// reports (means, quantiles, CDFs, monthly aggregation).
//
// A Series is a fixed-start, fixed-step (hourly) sequence of float64
// samples. The representation is deliberately dense: CarbonEdge replays
// year-long hourly traces (8760 samples) for hundreds of zones, and a dense
// slice keeps replay and aggregation cache-friendly.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Hour is the native step of all CarbonEdge series.
const Hour = time.Hour

// Series is an hourly time series beginning at Start. Values[i] is the
// sample for the hour starting at Start.Add(i*time.Hour).
type Series struct {
	Start  time.Time
	Values []float64
}

// New returns a zero-filled series of n hourly samples starting at start.
func New(start time.Time, n int) *Series {
	return &Series{Start: start.UTC(), Values: make([]float64, n)}
}

// FromValues wraps the given samples (not copied) as a series.
func FromValues(start time.Time, values []float64) *Series {
	return &Series{Start: start.UTC(), Values: values}
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// End returns the time just past the last sample.
func (s *Series) End() time.Time { return s.Start.Add(time.Duration(len(s.Values)) * Hour) }

// IndexOf returns the sample index covering t, or an error when t is
// outside the series' span.
func (s *Series) IndexOf(t time.Time) (int, error) {
	d := t.Sub(s.Start)
	if d < 0 {
		return 0, fmt.Errorf("timeseries: %v precedes series start %v", t, s.Start)
	}
	i := int(d / Hour)
	if i >= len(s.Values) {
		return 0, fmt.Errorf("timeseries: %v past series end %v", t, s.End())
	}
	return i, nil
}

// At returns the sample covering time t.
func (s *Series) At(t time.Time) (float64, error) {
	i, err := s.IndexOf(t)
	if err != nil {
		return 0, err
	}
	return s.Values[i], nil
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	return &Series{Start: s.Start, Values: append([]float64(nil), s.Values...)}
}

// Slice returns the sub-series covering [from, to) hours by index.
// The underlying storage is shared.
func (s *Series) Slice(from, to int) (*Series, error) {
	if from < 0 || to > len(s.Values) || from > to {
		return nil, fmt.Errorf("timeseries: slice [%d,%d) out of range 0..%d", from, to, len(s.Values))
	}
	//detlint:hotalloc window header over shared storage; callers on the hot path hold it in a local that does not escape
	return &Series{
		Start:  s.Start.Add(time.Duration(from) * Hour),
		Values: s.Values[from:to],
	}, nil
}

// Mean returns the arithmetic mean, or NaN for an empty series.
func (s *Series) Mean() float64 { return Mean(s.Values) }

// Min returns the minimum sample, or NaN for an empty series.
func (s *Series) Min() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		m = math.Min(m, v)
	}
	return m
}

// Max returns the maximum sample, or NaN for an empty series.
func (s *Series) Max() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		m = math.Max(m, v)
	}
	return m
}

// Sum returns the sum of all samples.
func (s *Series) Sum() float64 {
	var t float64
	for _, v := range s.Values {
		t += v
	}
	return t
}

// MonthlyMeans returns the mean value per calendar month present in the
// series, in chronological order. Months are determined in UTC. This backs
// the paper's seasonal plots (Figures 4b and 13).
func (s *Series) MonthlyMeans() []MonthStat {
	var out []MonthStat
	var cur *MonthStat
	for i, v := range s.Values {
		ts := s.Start.Add(time.Duration(i) * Hour)
		y, m := ts.Year(), ts.Month()
		if cur == nil || cur.Year != y || cur.Month != m {
			out = append(out, MonthStat{Year: y, Month: m})
			cur = &out[len(out)-1]
		}
		cur.sum += v
		cur.n++
	}
	for i := range out {
		out[i].Mean = out[i].sum / float64(out[i].n)
	}
	return out
}

// MonthStat is the per-month aggregate produced by MonthlyMeans.
type MonthStat struct {
	Year  int
	Month time.Month
	Mean  float64

	sum float64
	n   int
}

// HourlyProfile returns the 24-element mean value per hour-of-day (UTC),
// used for diurnal plots like Figure 4a.
func (s *Series) HourlyProfile() [24]float64 {
	var sums, counts [24]float64
	for i, v := range s.Values {
		h := s.Start.Add(time.Duration(i) * Hour).Hour()
		sums[h] += v
		counts[h]++
	}
	var out [24]float64
	for h := range out {
		if counts[h] > 0 {
			out[h] = sums[h] / counts[h]
		}
	}
	return out
}

// ErrLengthMismatch is returned by element-wise operations on series of
// different lengths.
var ErrLengthMismatch = errors.New("timeseries: length mismatch")

// AddSeries returns a new series with element-wise sum a+b.
func AddSeries(a, b *Series) (*Series, error) {
	if len(a.Values) != len(b.Values) {
		return nil, ErrLengthMismatch
	}
	out := New(a.Start, len(a.Values))
	for i := range a.Values {
		out.Values[i] = a.Values[i] + b.Values[i]
	}
	return out, nil
}

// Scale returns a new series with every sample multiplied by k.
func (s *Series) Scale(k float64) *Series {
	out := New(s.Start, len(s.Values))
	for i, v := range s.Values {
		out.Values[i] = v * k
	}
	return out
}

// Mean returns the arithmetic mean of values, or NaN when empty.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var t float64
	for _, v := range values {
		t += v
	}
	return t / float64(len(values))
}

// Quantile returns the q'th quantile (0 <= q <= 1) of values using linear
// interpolation between order statistics. It returns NaN for empty input.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th-percentile of values.
func Median(values []float64) float64 { return Quantile(values, 0.5) }

// Stddev returns the population standard deviation of values.
func Stddev(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	m := Mean(values)
	var ss float64
	for _, v := range values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(values)))
}

// CDF is an empirical cumulative distribution over a sample set.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the samples (copied).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples behind the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// P returns the empirical probability P(X <= x).
func (c *CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	n := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(c.sorted))
}

// Quantile returns the q'th quantile of the sample.
func (c *CDF) Quantile(q float64) float64 { return Quantile(c.sorted, q) }

// Points returns up to n evenly spaced (value, cumulative-probability)
// pairs suitable for plotting the CDF curve.
func (c *CDF) Points(n int) []CDFPoint {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	out := make([]CDFPoint, n)
	for i := 0; i < n; i++ {
		j := i * (len(c.sorted) - 1) / max(n-1, 1)
		out[i] = CDFPoint{
			Value: c.sorted[j],
			Prob:  float64(j+1) / float64(len(c.sorted)),
		}
	}
	return out
}

// CDFPoint is one point on an empirical CDF curve.
type CDFPoint struct {
	Value float64
	Prob  float64
}
