package timeseries

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

func TestNewAndBasicAccess(t *testing.T) {
	s := New(t0, 48)
	if s.Len() != 48 {
		t.Fatalf("Len = %d, want 48", s.Len())
	}
	if got := s.End(); !got.Equal(t0.Add(48 * time.Hour)) {
		t.Errorf("End = %v, want %v", got, t0.Add(48*time.Hour))
	}
	s.Values[5] = 42
	v, err := s.At(t0.Add(5*time.Hour + 30*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("At(5h30m) = %v, want 42 (hour bucket)", v)
	}
}

func TestAtOutOfRange(t *testing.T) {
	s := New(t0, 24)
	if _, err := s.At(t0.Add(-time.Hour)); err == nil {
		t.Error("At before start should error")
	}
	if _, err := s.At(t0.Add(24 * time.Hour)); err == nil {
		t.Error("At past end should error")
	}
	if _, err := s.At(t0.Add(23 * time.Hour)); err != nil {
		t.Errorf("At last hour errored: %v", err)
	}
}

func TestSlice(t *testing.T) {
	s := New(t0, 100)
	for i := range s.Values {
		s.Values[i] = float64(i)
	}
	sub, err := s.Slice(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 10 {
		t.Fatalf("sub len = %d, want 10", sub.Len())
	}
	if !sub.Start.Equal(t0.Add(10 * time.Hour)) {
		t.Errorf("sub start = %v", sub.Start)
	}
	if sub.Values[0] != 10 {
		t.Errorf("sub[0] = %v, want 10", sub.Values[0])
	}
	if _, err := s.Slice(-1, 5); err == nil {
		t.Error("negative slice start should error")
	}
	if _, err := s.Slice(5, 101); err == nil {
		t.Error("slice past end should error")
	}
	if _, err := s.Slice(7, 6); err == nil {
		t.Error("inverted slice should error")
	}
}

func TestStats(t *testing.T) {
	s := FromValues(t0, []float64{1, 2, 3, 4})
	if got := s.Mean(); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := s.Max(); got != 4 {
		t.Errorf("Max = %v, want 4", got)
	}
	if got := s.Sum(); got != 10 {
		t.Errorf("Sum = %v, want 10", got)
	}
}

func TestStatsEmpty(t *testing.T) {
	s := New(t0, 0)
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Error("empty series stats should be NaN")
	}
	if s.Sum() != 0 {
		t.Error("empty sum should be 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := FromValues(t0, []float64{1, 2, 3})
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestMonthlyMeans(t *testing.T) {
	// Two months: 31 days of January at value 10, 28 days of February at 20.
	n := (31 + 28) * 24
	s := New(t0, n)
	for i := range s.Values {
		if i < 31*24 {
			s.Values[i] = 10
		} else {
			s.Values[i] = 20
		}
	}
	ms := s.MonthlyMeans()
	if len(ms) != 2 {
		t.Fatalf("got %d months, want 2", len(ms))
	}
	if ms[0].Month != time.January || ms[0].Mean != 10 {
		t.Errorf("jan = %+v", ms[0])
	}
	if ms[1].Month != time.February || ms[1].Mean != 20 {
		t.Errorf("feb = %+v", ms[1])
	}
}

func TestHourlyProfile(t *testing.T) {
	s := New(t0, 24*10)
	for i := range s.Values {
		s.Values[i] = float64(i % 24)
	}
	p := s.HourlyProfile()
	for h := 0; h < 24; h++ {
		if p[h] != float64(h) {
			t.Errorf("profile[%d] = %v, want %d", h, p[h], h)
		}
	}
}

func TestAddSeriesAndScale(t *testing.T) {
	a := FromValues(t0, []float64{1, 2})
	b := FromValues(t0, []float64{10, 20})
	sum, err := AddSeries(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Values[0] != 11 || sum.Values[1] != 22 {
		t.Errorf("sum = %v", sum.Values)
	}
	if _, err := AddSeries(a, FromValues(t0, []float64{1})); err != ErrLengthMismatch {
		t.Errorf("mismatch error = %v, want ErrLengthMismatch", err)
	}
	sc := a.Scale(3)
	if sc.Values[0] != 3 || sc.Values[1] != 6 {
		t.Errorf("scale = %v", sc.Values)
	}
	if a.Values[0] != 1 {
		t.Error("Scale mutated receiver")
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(vals, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	if !math.IsNaN(Quantile(vals, 1.5)) {
		t.Error("Quantile out of range should be NaN")
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-sample quantile = %v, want 7", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	vals := []float64{3, 1, 2}
	Quantile(vals, 0.5)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestMedianAndStddev(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("Median = %v, want 3", got)
	}
	if got := Stddev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("Stddev constant = %v, want 0", got)
	}
	got := Stddev([]float64{1, 3})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("Stddev{1,3} = %v, want 1", got)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.P(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("P(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if got := c.Quantile(0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("CDF Quantile(0.5) = %v, want 2.5", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 300)
	for i := range samples {
		samples[i] = rng.NormFloat64() * 100
	}
	c := NewCDF(samples)
	prev := -1.0
	for x := -300.0; x <= 300; x += 7 {
		p := c.P(x)
		if p < prev {
			t.Fatalf("CDF not monotone at %v: %v < %v", x, p, prev)
		}
		prev = p
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("got %d points, want 5", len(pts))
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Value < pts[j].Value }) {
		t.Error("CDF points not sorted by value")
	}
	if pts[len(pts)-1].Prob != 1 {
		t.Errorf("last point prob = %v, want 1", pts[len(pts)-1].Prob)
	}
	if NewCDF(nil).Points(5) != nil {
		t.Error("Points on empty CDF should be nil")
	}
}

func TestQuantilePropertyWithinRange(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		q = math.Abs(math.Mod(q, 1))
		got := Quantile(vals, q)
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
