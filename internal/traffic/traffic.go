// Package traffic generates deterministic open-loop request workloads for
// the request-level traffic subsystem: per-source-city request streams
// with diurnal and weekly demand shapes, Poisson arrivals, and
// flash-crowd bursts. The paper's evaluation treats demand as a static
// per-deployment rate; this package models the spatiotemporally varying
// request traffic that rate abstracts away, so the simulator and the
// orchestrator can drive utilization, SLO attainment, and per-request
// carbon attribution from actual load.
//
// Like carbon.Generator, the process is fully deterministic given the
// config seed: every hourly slice is drawn from an RNG seeded by
// (seed, hour), so slices can be generated in any order — or concurrently
// from any number of goroutines — and sweeps stay bit-identical.
package traffic

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/rng"
)

// Scenario selects the temporal shape of the generated workload.
type Scenario int

// Workload scenarios.
const (
	// Steady holds the aggregate rate flat (the paper's implicit model).
	Steady Scenario = iota
	// Diurnal applies a double-peaked daily cycle in each source's local
	// time plus a weekend dip.
	Diurnal
	// FlashCrowd is Diurnal plus periodic bursts concentrated on one
	// source city (a viral event hitting one metro).
	FlashCrowd
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case Steady:
		return "steady"
	case Diurnal:
		return "diurnal"
	case FlashCrowd:
		return "flash-crowd"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// ScenarioByName parses a scenario name (as printed by String).
func ScenarioByName(name string) (Scenario, error) {
	switch strings.ToLower(name) {
	case "steady":
		return Steady, nil
	case "diurnal":
		return Diurnal, nil
	case "flash-crowd", "flash", "flashcrowd":
		return FlashCrowd, nil
	}
	return 0, fmt.Errorf("traffic: unknown scenario %q", name)
}

// Source is one demand origin: a city emitting requests.
type Source struct {
	// City names the origin (a latency-registry city).
	City string
	// Weight is the source's share of the aggregate rate.
	Weight float64
	// Lon approximates the source's local solar time (15 degrees/hour)
	// for the diurnal shape, mirroring carbon.Generator's demand model.
	Lon float64
}

// Config parameterizes a workload.
type Config struct {
	// Seed fixes all arrival draws.
	Seed int64
	// Scenario selects the temporal shape.
	Scenario Scenario
	// RPS is the mean aggregate request rate (requests/second) across all
	// sources at shape factor 1.0.
	RPS float64
	// FlashSource names the burst city for FlashCrowd (default: the
	// heaviest source).
	FlashSource string
	// FlashEveryHours is the burst period (default 72).
	FlashEveryHours int
	// FlashDurationHours is the burst length (default 3).
	FlashDurationHours int
	// FlashMultiplier scales the burst source's rate during a burst
	// (default 8).
	FlashMultiplier float64
}

// Validate reports configuration problems.
func (c *Config) Validate() error {
	if c.RPS <= 0 {
		return fmt.Errorf("traffic: RPS must be positive")
	}
	if c.Scenario < Steady || c.Scenario > FlashCrowd {
		return fmt.Errorf("traffic: unknown scenario %d", int(c.Scenario))
	}
	if c.FlashEveryHours < 0 || c.FlashDurationHours < 0 || c.FlashMultiplier < 0 {
		return fmt.Errorf("traffic: flash parameters must be non-negative")
	}
	return nil
}

// Generator produces hourly aggregated request slices per source.
type Generator struct {
	cfg      Config
	start    time.Time
	sources  []Source
	totalW   float64
	flashIdx int

	// src/rnd back AppendSlice's allocation-free path. Because each hourly
	// slice is drawn from a stream seeded purely by (Seed, hour), the
	// source can be reseeded in place instead of reallocated per slice.
	src *rng.Source
	rnd *rng.Rand
}

// NewGenerator builds a generator over the given sources. start anchors
// hour 0 to a wall-clock instant (the trace-year position determines
// day-of-week and, with each source's longitude, local time).
func NewGenerator(cfg Config, start time.Time, sources []Source) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("traffic: no sources")
	}
	if cfg.FlashEveryHours == 0 {
		cfg.FlashEveryHours = 72
	}
	if cfg.FlashDurationHours == 0 {
		cfg.FlashDurationHours = 3
	}
	if cfg.FlashMultiplier == 0 {
		cfg.FlashMultiplier = 8
	}
	g := &Generator{cfg: cfg, start: start, sources: sources, flashIdx: -1}
	g.src = rng.NewSource(0)
	g.rnd = rng.New(g.src)
	for i, s := range sources {
		if s.Weight < 0 {
			return nil, fmt.Errorf("traffic: source %s has negative weight", s.City)
		}
		g.totalW += s.Weight
		if cfg.FlashSource == s.City {
			g.flashIdx = i
		}
	}
	if g.totalW <= 0 {
		return nil, fmt.Errorf("traffic: source weights sum to zero")
	}
	if cfg.FlashSource != "" && g.flashIdx < 0 {
		return nil, fmt.Errorf("traffic: flash source %q not among sources", cfg.FlashSource)
	}
	if g.flashIdx < 0 {
		// Default burst target: the heaviest source (first on ties).
		for i, s := range sources {
			if g.flashIdx < 0 || s.Weight > sources[g.flashIdx].Weight {
				g.flashIdx = i
			}
		}
	}
	return g, nil
}

// Start returns the instant of hour 0.
func (g *Generator) Start() time.Time { return g.start }

// Sources returns the generator's demand origins (do not modify).
func (g *Generator) Sources() []Source { return g.sources }

// Rate returns source i's expected request rate (requests/second) during
// hour h: the aggregate RPS split by weight and scaled by the scenario's
// temporal shape at the source's local time.
func (g *Generator) Rate(i, hour int) float64 {
	s := g.sources[i]
	base := g.cfg.RPS * s.Weight / g.totalW
	return base * g.shape(i, hour)
}

// shape is the scenario's demand multiplier for source i at hour h.
func (g *Generator) shape(i, hour int) float64 {
	if g.cfg.Scenario == Steady {
		return 1
	}
	ts := g.start.Add(time.Duration(hour) * time.Hour)
	// Local solar time from longitude, as in carbon.Generator.
	local := math.Mod(float64(ts.Hour())+g.sources[i].Lon/15+48, 24)
	// Double-peaked day: midday shoulder and a dominant evening peak
	// around 20:00 local, trough near 04:00.
	f := 1 + 0.40*math.Sin(2*math.Pi*(local-14)/24) + 0.12*math.Sin(4*math.Pi*(local-2)/24)
	if dow := ts.Weekday(); dow == time.Saturday || dow == time.Sunday {
		f *= 0.82
	}
	if f < 0.05 {
		f = 0.05
	}
	if g.cfg.Scenario == FlashCrowd && i == g.flashIdx &&
		hour%g.cfg.FlashEveryHours < g.cfg.FlashDurationHours {
		f *= g.cfg.FlashMultiplier
	}
	return f
}

// Slice draws the aggregated request counts per source for hour h (one
// Poisson draw per source over the 3600-second window). The result is a
// pure function of (Seed, h): slices may be generated in any order and
// from concurrent goroutines.
func (g *Generator) Slice(hour int) []int64 {
	r := rng.New(rng.NewSource(hourSeed(g.cfg.Seed, hour)))
	out := make([]int64, len(g.sources))
	for i := range g.sources {
		out[i] = poissonCount(r, g.Rate(i, hour)*3600)
	}
	return out
}

// AppendSlice appends hour h's per-source request counts to dst and
// returns the extended slice, drawing the identical values Slice(h)
// would. It reseeds a generator-owned RNG in place instead of
// allocating one per call, so a caller reusing dst's capacity generates
// slices with zero steady-state allocations. Unlike Slice, AppendSlice
// is NOT safe for concurrent use: the reseedable stream is shared
// generator state.
func (g *Generator) AppendSlice(dst []int64, hour int) []int64 {
	g.src.Seed(hourSeed(g.cfg.Seed, hour))
	for i := range g.sources {
		dst = append(dst, poissonCount(g.rnd, g.Rate(i, hour)*3600))
	}
	return dst
}

// hourSeed derives the per-slice RNG seed by hashing the base seed and
// the hour through the mixer together. Deriving it as base^hash(hour)
// (the previous scheme) kept the XOR-distance between two base seeds'
// per-hour streams constant — every workload pair shared one fixed
// offset across all hours, correlating sweeps that differ only in seed.
func hourSeed(base int64, hour int) int64 {
	return rng.MixSeed2(base, int64(hour))
}

// poissonCount draws a Poisson(lambda) count: Knuth's product method for
// small rates, the normal approximation for the large per-slice rates an
// open-loop generator produces (a million-RPS source draws lambda ~ 3.6e9
// per hour, far past where exact sampling matters or is affordable).
func poissonCount(rng *rng.Rand, lambda float64) int64 {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		var k int64
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := lambda + math.Sqrt(lambda)*rng.NormFloat64()
	if n < 0 {
		return 0
	}
	return int64(n + 0.5)
}
