package traffic

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

var testStart = time.Date(2023, 1, 2, 0, 0, 0, 0, time.UTC) // a Monday

func testSources() []Source {
	return []Source{
		{City: "Miami", Weight: 6, Lon: -80.2},
		{City: "Orlando", Weight: 2.7, Lon: -81.4},
		{City: "Tampa", Weight: 3.2, Lon: -82.5},
	}
}

func mustGen(t *testing.T, cfg Config) *Generator {
	t.Helper()
	g, err := NewGenerator(cfg, testStart, testSources())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Config{Seed: 1, RPS: 0}, testStart, testSources()); err == nil {
		t.Error("zero RPS accepted")
	}
	if _, err := NewGenerator(Config{Seed: 1, RPS: 10}, testStart, nil); err == nil {
		t.Error("no sources accepted")
	}
	if _, err := NewGenerator(Config{Seed: 1, RPS: 10, FlashSource: "Atlantis"}, testStart, testSources()); err == nil {
		t.Error("unknown flash source accepted")
	}
	if _, err := NewGenerator(Config{Seed: 1, RPS: 10}, testStart,
		[]Source{{City: "A", Weight: 0}}); err == nil {
		t.Error("zero total weight accepted")
	}
	if _, err := ScenarioByName("tsunami"); err == nil {
		t.Error("unknown scenario name accepted")
	}
	for _, name := range []string{"steady", "diurnal", "flash-crowd"} {
		s, err := ScenarioByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if s.String() != name {
			t.Errorf("round-trip %s -> %s", name, s)
		}
	}
}

func TestSliceDeterministicAndRandomAccess(t *testing.T) {
	cfg := Config{Seed: 42, Scenario: Diurnal, RPS: 500}
	a, b := mustGen(t, cfg), mustGen(t, cfg)
	// Draw hours in different orders; each hour must be identical.
	for _, h := range []int{5, 0, 99, 5, 7} {
		if !reflect.DeepEqual(a.Slice(h), b.Slice(h)) {
			t.Fatalf("hour %d differs between generators", h)
		}
	}
	first := a.Slice(17)
	for i := 0; i < 3; i++ {
		if !reflect.DeepEqual(a.Slice(17), first) {
			t.Fatal("repeated draws of one hour differ")
		}
	}
	// A different seed must actually change the stream.
	cfg.Seed = 43
	c := mustGen(t, cfg)
	same := true
	for h := 0; h < 24; h++ {
		if !reflect.DeepEqual(a.Slice(h), c.Slice(h)) {
			same = false
			break
		}
	}
	if same {
		t.Error("seed change did not alter the stream")
	}
}

func TestConcurrentSlicesMatchSerial(t *testing.T) {
	// Slices drawn concurrently (run under -race) must equal the serial
	// stream — the generator holds no mutable state.
	g := mustGen(t, Config{Seed: 7, Scenario: FlashCrowd, RPS: 1000})
	const hours = 200
	serial := make([][]int64, hours)
	for h := 0; h < hours; h++ {
		serial[h] = g.Slice(h)
	}
	parallel := make([][]int64, hours)
	var wg sync.WaitGroup
	for h := 0; h < hours; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			parallel[h] = g.Slice(h)
		}(h)
	}
	wg.Wait()
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("concurrent slice draws diverged from serial")
	}
}

func TestSteadyMeanMatchesRPS(t *testing.T) {
	g := mustGen(t, Config{Seed: 1, Scenario: Steady, RPS: 800})
	var total int64
	hours := 24 * 7
	for h := 0; h < hours; h++ {
		for _, n := range g.Slice(h) {
			total += n
		}
	}
	mean := float64(total) / float64(hours) / 3600
	if mean < 760 || mean > 840 {
		t.Errorf("steady mean rate %.1f rps, want ~800", mean)
	}
}

func TestWeightsSplitDemand(t *testing.T) {
	g := mustGen(t, Config{Seed: 5, Scenario: Steady, RPS: 600})
	totals := make([]int64, 3)
	for h := 0; h < 24*7; h++ {
		for i, n := range g.Slice(h) {
			totals[i] += n
		}
	}
	// Miami (weight 6) should see roughly twice Tampa's (3.2) traffic.
	ratio := float64(totals[0]) / float64(totals[2])
	if ratio < 1.6 || ratio > 2.2 {
		t.Errorf("Miami/Tampa ratio %.2f, want ~1.88", ratio)
	}
}

func TestDiurnalShape(t *testing.T) {
	g := mustGen(t, Config{Seed: 9, Scenario: Diurnal, RPS: 1000})
	// Compare the same local hours across the weekdays: evening peak vs
	// pre-dawn trough for Miami (UTC-5ish by longitude).
	peak, trough := 0.0, 0.0
	for d := 0; d < 5; d++ {
		// 01:00 UTC ~ 20:00 local; 09:00 UTC ~ 04:00 local.
		peak += g.Rate(0, d*24+1)
		trough += g.Rate(0, d*24+9)
	}
	if peak <= trough*1.5 {
		t.Errorf("diurnal peak %.1f not clearly above trough %.1f", peak, trough)
	}
	// Weekend dip: Monday vs Saturday at the same hour.
	if sat := g.Rate(0, 5*24+1); sat >= g.Rate(0, 1) {
		t.Errorf("Saturday rate %.1f >= Monday rate %.1f", sat, g.Rate(0, 1))
	}
}

func TestFlashCrowdBurst(t *testing.T) {
	cfg := Config{Seed: 3, Scenario: FlashCrowd, RPS: 1000,
		FlashSource: "Tampa", FlashEveryHours: 48, FlashDurationHours: 2, FlashMultiplier: 10}
	g := mustGen(t, cfg)
	inBurst := g.Rate(2, 48)  // hour 48 starts a burst window
	outBurst := g.Rate(2, 50) // two hours later the burst has passed
	if inBurst < outBurst*4 {
		t.Errorf("burst rate %.1f not clearly above off-burst %.1f", inBurst, outBurst)
	}
	// Non-flash sources are unaffected by the window.
	base := mustGen(t, Config{Seed: 3, Scenario: Diurnal, RPS: 1000})
	if g.Rate(0, 48) != base.Rate(0, 48) {
		t.Error("flash burst leaked into a non-flash source")
	}
}

func TestPoissonCountRegimes(t *testing.T) {
	g := mustGen(t, Config{Seed: 21, Scenario: Steady, RPS: 0.002}) // tiny lambda/hour
	var total int64
	for h := 0; h < 2000; h++ {
		for _, n := range g.Slice(h) {
			total += n
		}
	}
	// lambda = 7.2/hour split over three sources; expect ~14400 total.
	if total < 12000 || total > 17000 {
		t.Errorf("small-rate Poisson total %d, want ~14400", total)
	}
}

func TestHourSeedsDecorrelatedAcrossBaseSeeds(t *testing.T) {
	// Regression for the base^hash(hour) derivation: two workloads with
	// different base seeds got per-hour seed streams at a constant
	// XOR-distance (seedA[h]^seedB[h] == baseA^baseB for every hour), so
	// sweeps differing only in seed drew correlated arrival processes.
	// Hashing base and hour together breaks the shared offset.
	const hours = 512
	xors := map[int64]bool{}
	for h := 0; h < hours; h++ {
		xors[hourSeed(42, h)^hourSeed(43, h)] = true
	}
	if len(xors) < hours/2 {
		t.Fatalf("hourSeed(42,h)^hourSeed(43,h) took only %d distinct values over %d hours (constant-offset correlation)", len(xors), hours)
	}

	// Per-hour seeds within one base stay distinct (random access relies
	// on it).
	seen := map[int64]bool{}
	for h := 0; h < hours; h++ {
		s := hourSeed(42, h)
		if seen[s] {
			t.Fatalf("hourSeed(42,%d) collides with an earlier hour", h)
		}
		seen[s] = true
	}
}
